//! Schedulers: drivers that pick which process steps next and record the
//! resulting execution.
//!
//! # The [`Scheduler`] trait
//!
//! A scheduler is the adversary of the paper's model: the algorithm is
//! deterministic, so the *schedule* — which process moves at each point —
//! is the only source of nondeterminism, and choosing it is how an
//! adversary extracts cost. Implementors see a [`SchedContext`]: one
//! [`ProcessView`] per process carrying its section, completed passages,
//! and a preview of its pending step (`shared`, `changes_state` — the SC
//! predicate of the paper's Figure 1). [`run_scheduler`] drives any
//! `Scheduler` until it returns `None` or a step budget is exhausted.
//!
//! Built-in schedulers:
//!
//! * [`Sequential`] — the canonical no-contention schedule: each process
//!   of an order runs a whole passage before the next starts;
//! * [`RoundRobin`] — deterministic fair interleaving;
//! * [`Random`] — uniformly random fair interleaving (seeded);
//! * [`GreedyAdversary`] — cost-maximizing: always schedules a process
//!   whose pending shared step would be charged under SC;
//! * [`Burst`] — phased arrival: processes join in waves;
//! * [`Stagger`] — per-process enable times;
//! * [`Script`] — replays a fixed pick sequence (e.g. an exact
//!   worst-case witness schedule) and stops.
//!
//! [`Traced`] wraps any scheduler and records the picks it makes — the
//! hook surface for adversary engines (`exclusion-bound`) that need a
//! replayable [`Script`] out of a stateful, observation-fed strategy
//! without changing how the run is driven or priced.
//!
//! # Fairness obligations for implementors
//!
//! The paper's executions are *fair*: no process outside its remainder
//! section is neglected forever. Every built-in scheduler here upholds a
//! bounded version of that obligation — each live process is scheduled at
//! least once in any window of `B` picks for some bound `B` (round-robin:
//! `B = n`; [`GreedyAdversary`]: its `patience` valve) — which is what
//! makes runs of livelock-free algorithms terminate. A custom `Scheduler`
//! that starves a live process forever models a *non-admissible*
//! adversary: [`run_scheduler`] will still behave correctly, but runs may
//! only end by exhausting `max_steps` and reporting [`RunError`].
//! Implementors must also only ever pick **live** processes (ones with
//! `done == false`); picking a finished process would start an unwanted
//! extra passage, and the driver rejects it with a debug assertion.
//!
//! # The incremental-view contract
//!
//! The driver does **not** rebuild the views from scratch on every step
//! (that would cost Θ(n) `peek`/`observe` evaluations per simulated
//! step). It maintains them in a [`ViewTable`] and, after a step,
//! refreshes only what the step could have changed:
//!
//! * the acting process's whole view (its state, section, passage count
//!   and pending step are the only ones that can move);
//! * the `changes_state` preview of every process whose pending read or
//!   RMW targets the register the step wrote, found via a per-register
//!   waiter index (a write can flip exactly those previews — a pending
//!   write/crit preview depends only on the acting process's own state).
//!
//! The per-step cost is therefore O(1 + affected) instead of Θ(n). A
//! custom [`Scheduler`] may rely on the views it sees being *exactly*
//! what a fresh rebuild would produce (pinned by tests), and a custom
//! driver that wants the same guarantee can use [`ViewTable`] directly:
//! construct it with [`ViewTable::new`], and call [`ViewTable::apply`]
//! with the [`Executed`] outcome of every step it performs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::automaton::{Automaton, NextStep};
use crate::error::RunError;
use crate::execution::Execution;
use crate::ids::{ProcessId, RegisterId};
use crate::step::Step;
use crate::system::{Executed, Section, System};

/// What a scheduler is allowed to see about one process before picking:
/// bookkeeping plus a preview of the process's pending step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcessView {
    /// The process this view describes.
    pub pid: ProcessId,
    /// Its current section.
    pub section: Section,
    /// Completed passages so far.
    pub passages: usize,
    /// Whether it has completed all passages the run asks for. Done
    /// processes must not be picked.
    pub done: bool,
    /// The pending step itself (δ of the current state).
    pub next: NextStep,
    /// Whether executing its pending step right now would change its
    /// state — i.e. whether the SC cost model would charge it (for
    /// shared steps) and whether a spin would advance (for reads).
    ///
    /// Computing this costs an `observe` evaluation per process per
    /// step, so it is only populated for schedulers that opt in via
    /// [`Scheduler::wants_step_previews`]; otherwise it is `false`.
    pub changes_state: bool,
}

impl ProcessView {
    /// Whether the pending step accesses shared memory (read, write or
    /// RMW — as opposed to a critical step).
    #[must_use]
    pub fn shared(&self) -> bool {
        !matches!(self.next, NextStep::Crit(_))
    }
}

/// Everything a [`Scheduler`] sees when asked for the next process.
#[derive(Clone, Copy, Debug)]
pub struct SchedContext<'a> {
    /// Global index of the step about to be scheduled (0-based); doubles
    /// as the arrival clock for [`Burst`] and [`Stagger`] and as the
    /// pick clock for [`GreedyAdversary`]'s starvation valve. Drivers
    /// must pass `0` on a run's first pick and increase it by one per
    /// executed step; the built-in schedulers whose picks depend on
    /// per-run history ([`Sequential`], [`GreedyAdversary`]) treat a
    /// pick at step `0` as the start of a fresh run and reset that
    /// history. (The rotation-based schedulers keep their cursor, and
    /// [`Random`] its RNG stream — reusing those across runs is
    /// well-defined but does not replay the first run's schedule.)
    pub step: usize,
    /// The passage count every process is driven to.
    pub target_passages: usize,
    /// One view per process, indexed by process.
    pub views: &'a [ProcessView],
}

impl SchedContext<'_> {
    /// Views of the processes that still have passages to complete.
    pub fn live(&self) -> impl Iterator<Item = &ProcessView> {
        self.views.iter().filter(|v| !v.done)
    }
}

/// A scheduling policy: picks which live process steps next.
///
/// Object safe — `Box<dyn Scheduler>` lets callers select policies at
/// runtime. See the module docs for the fairness obligations.
pub trait Scheduler {
    /// A short name for reports and tables.
    fn name(&self) -> String;

    /// The next process to step, or `None` to end the run (normally:
    /// when every process is done).
    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId>;

    /// Whether this scheduler reads [`ProcessView::changes_state`].
    /// Defaults to `false`, which lets the driver skip the per-process
    /// `observe` evaluation on every step; cost-aware schedulers (like
    /// [`GreedyAdversary`]) opt in.
    fn wants_step_previews(&self) -> bool {
        false
    }
}

/// The single definition of what a process's view is — used both by the
/// from-scratch rebuild and by [`ViewTable::apply`]'s incremental
/// refresh, so the two cannot drift.
fn view_of<A: Automaton>(
    sys: &System<'_, A>,
    pid: ProcessId,
    passages: usize,
    previews: bool,
) -> ProcessView {
    ProcessView {
        pid,
        section: sys.section(pid),
        passages: sys.passages(pid),
        done: sys.passages(pid) >= passages,
        next: sys.peek(pid),
        changes_state: previews && sys.step_changes_state(pid),
    }
}

fn build_views<A: Automaton>(
    sys: &System<'_, A>,
    passages: usize,
    previews: bool,
    out: &mut Vec<ProcessView>,
) {
    out.clear();
    out.extend(ProcessId::all(sys.processes()).map(|p| view_of(sys, p, passages, previews)));
}

/// Incrementally maintained [`ProcessView`]s over a live [`System`] —
/// the table behind the drivers' O(1 + affected) per-step cost (see the
/// module docs for the contract).
///
/// A `ViewTable` is always equal to what a from-scratch rebuild against
/// the current system would produce; [`ViewTable::new`] *is* that
/// rebuild, so the invariant is directly testable:
///
/// ```
/// use exclusion_shmem::sched::ViewTable;
/// use exclusion_shmem::testing::Alternator;
/// use exclusion_shmem::{ProcessId, System};
///
/// let alg = Alternator::new(3);
/// let mut sys = System::new(&alg);
/// let mut table = ViewTable::new(&sys, 1, true);
/// let done = sys.step(ProcessId::new(0));
/// table.apply(&sys, 1, &done);
/// assert_eq!(table.views(), ViewTable::new(&sys, 1, true).views());
/// ```
#[derive(Clone, Debug)]
pub struct ViewTable {
    views: Vec<ProcessView>,
    previews: bool,
    /// `waiters[r]`: processes whose pending step reads or RMWs register
    /// `r` — the only views whose `changes_state` preview a write to `r`
    /// can flip. Maintained (non-empty) only when previews are on.
    waiters: Vec<Vec<ProcessId>>,
    /// `slot[p]`: where process `p` sits in the waiter index, if
    /// anywhere, for O(1) un-enrollment.
    slot: Vec<Option<(RegisterId, usize)>>,
}

impl ViewTable {
    /// Builds the table from scratch against the system's current state:
    /// one view per process, driven to `passages` target passages, with
    /// `changes_state` previews populated iff `previews` is set.
    #[must_use]
    pub fn new<A: Automaton>(sys: &System<'_, A>, passages: usize, previews: bool) -> Self {
        let n = sys.processes();
        let mut table = ViewTable {
            views: Vec::with_capacity(n),
            previews,
            waiters: vec![
                Vec::new();
                if previews {
                    sys.algorithm().registers()
                } else {
                    0
                }
            ],
            slot: vec![None; if previews { n } else { 0 }],
        };
        build_views(sys, passages, previews, &mut table.views);
        if previews {
            for p in ProcessId::all(n) {
                table.enroll(p);
            }
        }
        table
    }

    /// The views, indexed by process.
    #[must_use]
    pub fn views(&self) -> &[ProcessView] {
        &self.views
    }

    /// Updates the table after `sys` executed one step with outcome
    /// `done`: the acting process's view is rebuilt, and — when previews
    /// are on and the step wrote a register — the `changes_state`
    /// preview of every process waiting on that register is
    /// re-evaluated.
    pub fn apply<A: Automaton>(&mut self, sys: &System<'_, A>, passages: usize, done: &Executed) {
        let pid = done.step.pid();
        self.views[pid.index()] = view_of(sys, pid, passages, self.previews);
        if !self.previews {
            return;
        }
        self.unenroll(pid);
        self.enroll(pid);
        if let Step::Write { reg, .. } | Step::Rmw { reg, .. } = done.step {
            for k in 0..self.waiters[reg.index()].len() {
                let q = self.waiters[reg.index()][k];
                if q != pid {
                    self.views[q.index()].changes_state = sys.step_changes_state(q);
                }
            }
        }
    }

    fn enroll(&mut self, pid: ProcessId) {
        let reg = match self.views[pid.index()].next {
            NextStep::Read(r) | NextStep::Rmw(r, _) => r,
            NextStep::Write(..) | NextStep::Crit(_) => return,
        };
        let list = &mut self.waiters[reg.index()];
        self.slot[pid.index()] = Some((reg, list.len()));
        list.push(pid);
    }

    fn unenroll(&mut self, pid: ProcessId) {
        let Some((reg, k)) = self.slot[pid.index()].take() else {
            return;
        };
        let list = &mut self.waiters[reg.index()];
        list.swap_remove(k);
        if let Some(&moved) = list.get(k) {
            self.slot[moved.index()] = Some((reg, k));
        }
    }
}

/// Drives `sched` over a fresh system of `alg` until the scheduler
/// returns `None` or the step budget is exhausted, invoking `sink` with
/// the [`Executed`] outcome of every step as the run produces it — the
/// streaming core shared by [`run_scheduler`] (whose sink records the
/// execution) and the no-record pricing path (`exclusion-cost`'s
/// `run_priced`, whose sink feeds a cost tracker). Returns the number of
/// steps executed.
///
/// Views are maintained incrementally via [`ViewTable`], so the
/// per-step bookkeeping is O(1 + affected), not Θ(n).
///
/// # Errors
///
/// Returns [`RunError`] if the scheduler keeps picking processes past
/// `max_steps`.
pub fn run_scheduler_with<A, S, F>(
    alg: &A,
    sched: &mut S,
    passages: usize,
    max_steps: usize,
    mut sink: F,
) -> Result<usize, RunError>
where
    A: Automaton,
    S: Scheduler + ?Sized,
    F: FnMut(&Executed),
{
    let n = alg.processes();
    let mut sys = System::new(alg);
    let mut table = ViewTable::new(&sys, passages, sched.wants_step_previews());
    let mut executed = 0usize;
    for step in 0..=max_steps {
        let ctx = SchedContext {
            step,
            target_passages: passages,
            views: table.views(),
        };
        match sched.pick(&ctx) {
            None => return Ok(executed),
            Some(p) if step < max_steps => {
                debug_assert!(
                    !table.views()[p.index()].done,
                    "{} picked finished process {p}",
                    sched.name()
                );
                let done = sys.step(p);
                table.apply(&sys, passages, &done);
                sink(&done);
                executed += 1;
            }
            Some(_) => break,
        }
    }
    let completed = table.views().iter().filter(|v| v.done).count();
    Err(RunError {
        limit: max_steps,
        completed,
        processes: n,
    })
}

/// Drives `sched` over a fresh system of `alg` until the scheduler
/// returns `None`, recording the execution. Every process is expected to
/// be driven to `passages` completed passages (exposed to the scheduler
/// as `target_passages`; the scheduler decides when to stop).
///
/// # Errors
///
/// Returns [`RunError`] if the scheduler keeps picking processes past
/// `max_steps`.
pub fn run_scheduler<A, S>(
    alg: &A,
    sched: &mut S,
    passages: usize,
    max_steps: usize,
) -> Result<Execution, RunError>
where
    A: Automaton,
    S: Scheduler + ?Sized,
{
    let mut exec = Execution::new();
    run_scheduler_with(alg, sched, passages, max_steps, |done| exec.push(done.step))?;
    Ok(exec)
}

/// The canonical sequential schedule: each process of `order` runs one
/// whole passage before the next one starts. With a repeated process the
/// later occurrence runs one *further* passage.
#[derive(Clone, Debug)]
pub struct Sequential {
    order: Vec<ProcessId>,
    /// First entry of `order` whose passage is not yet complete.
    /// Passage counts never decrease, so the cursor only ever advances —
    /// picks are amortized O(1) instead of rescanning the whole order.
    cursor: usize,
    /// `counts[p]`: occurrences of `p` among the completed entries
    /// `order[..cursor]`; entry `cursor` is complete once `p` has
    /// `counts[p] + 1` passages.
    counts: Vec<usize>,
}

impl Sequential {
    /// A sequential scheduler completing one passage per entry of
    /// `order`, in order.
    #[must_use]
    pub fn new(order: Vec<ProcessId>) -> Self {
        Sequential {
            order,
            cursor: 0,
            counts: Vec::new(),
        }
    }
}

impl Scheduler for Sequential {
    fn name(&self) -> String {
        "sequential".into()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        // A pick at step 0 is the start of a (possibly new) run: reset,
        // so a reused scheduler replays its order from the top.
        if self.counts.len() != ctx.views.len() {
            self.counts = vec![0; ctx.views.len()];
            self.cursor = 0;
        } else if ctx.step == 0 {
            self.counts.fill(0);
            self.cursor = 0;
        }
        while let Some(&p) = self.order.get(self.cursor) {
            if ctx.views[p.index()].passages > self.counts[p.index()] {
                self.counts[p.index()] += 1;
                self.cursor += 1;
            } else {
                return Some(p);
            }
        }
        None
    }
}

/// Deterministic fair interleaving: processes step in cyclic order,
/// skipping finished ones.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin scheduler starting at process 0.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        let n = ctx.views.len();
        for _ in 0..n {
            let v = &ctx.views[self.next % n];
            self.next = (self.next + 1) % n;
            if !v.done {
                return Some(v.pid);
            }
        }
        None
    }
}

/// Uniformly random fair interleaving, seeded for reproducibility.
///
/// The candidate buffer is reused across picks, so scheduling is
/// allocation-free after the first step.
#[derive(Clone, Debug)]
pub struct Random {
    rng: StdRng,
    live: Vec<ProcessId>,
}

impl Random {
    /// A random scheduler with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Random {
            rng: StdRng::seed_from_u64(seed),
            live: Vec::new(),
        }
    }
}

impl Scheduler for Random {
    fn name(&self) -> String {
        "random".into()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        self.live.clear();
        self.live.extend(ctx.live().map(|v| v.pid));
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[self.rng.random_range(0..self.live.len())])
        }
    }
}

/// The greedy cost-maximizing adversary: always schedules a process
/// whose pending step will be *charged* by the SC cost model.
///
/// Pick order (the paper's adversary intuition — force state changes,
/// never donate free progress):
///
/// 1. a live process whose pending **shared** step changes its state
///    (a charged step);
/// 2. failing that, a live process at a critical step (free, but
///    advances the passage structure so more contention can build);
/// 3. failing that, a live spinning process (free read; nothing better
///    exists).
///
/// Ties prefer the process with the fewest completed passages (keeping
/// as many processes as possible in the contended trying section), then
/// the lowest id — fully deterministic.
///
/// A starvation valve keeps the schedule fair in the paper's sense: any
/// live process skipped `patience` consecutive picks is scheduled next,
/// so livelock-free algorithms still terminate under the adversary.
///
/// Skip counts are derived from the pick clock (`ctx.step`) and the step
/// at which each process was last picked, so a pick costs one fused pass
/// over the views plus a single O(1) write — not the per-process counter
/// sweep it used to.
#[derive(Clone, Debug)]
pub struct GreedyAdversary {
    /// `last_picked[p]`: the step at which `p` was last scheduled.
    last_picked: Vec<Option<usize>>,
    patience: Option<usize>,
}

impl GreedyAdversary {
    /// An adversary with the default patience of `4·n + 4` picks.
    #[must_use]
    pub fn new() -> Self {
        GreedyAdversary {
            last_picked: Vec::new(),
            patience: None,
        }
    }

    /// An adversary whose starvation valve triggers after `patience`
    /// consecutive skips. Lower is fairer (and cheaper); `usize::MAX`
    /// disables the valve (runs may then exhaust their budget).
    #[must_use]
    pub fn with_patience(patience: usize) -> Self {
        GreedyAdversary {
            last_picked: Vec::new(),
            patience: Some(patience),
        }
    }
}

impl Default for GreedyAdversary {
    fn default() -> Self {
        GreedyAdversary::new()
    }
}

impl Scheduler for GreedyAdversary {
    fn name(&self) -> String {
        "greedy-adversary".into()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        let n = ctx.views.len();
        // Derived per pick, not latched: a reused adversary driven over
        // a different-sized algorithm gets that run's default valve,
        // like the `last_picked` reset below.
        let patience = self.patience.unwrap_or(4 * n + 4);
        // A pick at step 0 is the start of a (possibly new) run; stale
        // entries would make `waited` underflow on a reused scheduler.
        if self.last_picked.len() != n {
            self.last_picked = vec![None; n];
        } else if ctx.step == 0 {
            self.last_picked.fill(None);
        }
        // One pass computes both candidates. `waited` — picks since the
        // process last ran — falls out of the pick clock: one pick per
        // step, so a process last picked at step `s` has been skipped
        // `step - s - 1` times (and a never-picked one `step` times).
        // The pick ordering: class, then fewest passages, then
        // longest-unscheduled, then pid.
        type GreedyKey = (usize, usize, std::cmp::Reverse<usize>, usize);
        let mut starved: Option<(usize, ProcessId)> = None;
        let mut best: Option<(GreedyKey, ProcessId)> = None;
        for v in ctx.live() {
            // Saturating: a driver that re-polls at the same step (after
            // discarding a pick) sees `waited = 0`, not an underflow.
            let waited = match self.last_picked[v.pid.index()] {
                Some(s) => ctx.step.saturating_sub(s + 1),
                None => ctx.step,
            };
            // `>=` keeps the *latest* maximum, matching the counter-era
            // tie-break among equally starved processes.
            if waited >= patience && starved.is_none_or(|(w, _)| waited >= w) {
                starved = Some((waited, v.pid));
            }
            let class = match (v.next, v.changes_state) {
                // Recruit everyone into the trying section first:
                // contention needs participants.
                (NextStep::Crit(crate::step::CritKind::Try), _) => 0usize,
                // Charged writes/RMWs next: they fill the registers
                // other processes are about to read, steering those
                // reads onto their contended (expensive) paths.
                (NextStep::Write(..) | NextStep::Rmw(..), true) => 1,
                // Then harvest the reads those writes charged.
                (NextStep::Read(_), true) => 2,
                // Free critical progress only when nothing is
                // chargeable.
                (NextStep::Crit(_), _) => 3,
                // Free spins last: they cost nothing and learn
                // nothing.
                (_, false) => 4,
            };
            // Within a class: fewest passages (keep everyone in the
            // game), then longest-unscheduled (advance the match
            // fronts symmetrically, like round-robin does), then pid.
            let key = (class, v.passages, std::cmp::Reverse(waited), v.pid.index());
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, v.pid));
            }
        }
        let picked = starved.map(|(_, p)| p).or(best.map(|(_, p)| p))?;
        self.last_picked[picked.index()] = Some(ctx.step);
        Some(picked)
    }

    fn wants_step_previews(&self) -> bool {
        true
    }
}

/// Replays a fixed process sequence, one pick per step, then stops —
/// the bridge from an explicitly chosen schedule (e.g. the witness of
/// `exclusion-explore`'s exact worst-case search) back into every
/// generic driver, including the streaming pricer `run_priced`.
///
/// The script is indexed by the driver's step clock, so a reused
/// `Script` deterministically replays from the top on every run. The
/// script must only name live processes at each point; a script that
/// picks a finished process trips the driver's debug assertion, exactly
/// like any other misbehaving scheduler.
///
/// # Example
///
/// ```
/// use exclusion_shmem::sched::{run_scheduler, Script};
/// use exclusion_shmem::ProcessId;
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(1);
/// let p0 = ProcessId::new(0);
/// let exec = run_scheduler(&alg, &mut Script::new(vec![p0; 6]), 1, 100).unwrap();
/// assert_eq!(exec.len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct Script {
    picks: Vec<ProcessId>,
}

impl Script {
    /// A scheduler replaying exactly `picks`, in order.
    #[must_use]
    pub fn new(picks: Vec<ProcessId>) -> Self {
        Script { picks }
    }

    /// The scripted picks.
    #[must_use]
    pub fn picks(&self) -> &[ProcessId] {
        &self.picks
    }
}

impl Scheduler for Script {
    fn name(&self) -> String {
        format!("script({} picks)", self.picks.len())
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        self.picks.get(ctx.step).copied()
    }
}

/// Records the picks an inner scheduler makes while delegating
/// everything to it — the bridge from any *stateful* scheduling
/// strategy (an adaptive adversary, a random search) back to a
/// replayable [`Script`]: drive a `Traced` scheduler once, then replay
/// [`picks`](Traced::picks) through any driver, including the
/// streaming pricer, and get the identical run.
///
/// Follows the per-run reset convention of the module docs: a pick at
/// step 0 starts a fresh trace, so a reused `Traced` records its
/// latest run.
///
/// # Example
///
/// ```
/// use exclusion_shmem::sched::{run_scheduler, GreedyAdversary, Script, Traced};
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(3);
/// let mut traced = Traced::new(GreedyAdversary::new());
/// let exec = run_scheduler(&alg, &mut traced, 1, 100_000).unwrap();
/// let replayed =
///     run_scheduler(&alg, &mut Script::new(traced.into_picks()), 1, 100_000).unwrap();
/// assert_eq!(replayed, exec);
/// ```
#[derive(Clone, Debug)]
pub struct Traced<S> {
    inner: S,
    picks: Vec<ProcessId>,
}

impl<S: Scheduler> Traced<S> {
    /// Wraps `inner`, recording every pick it makes.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Traced {
            inner,
            picks: Vec::new(),
        }
    }

    /// The picks recorded so far (this run's, after a reuse).
    #[must_use]
    pub fn picks(&self) -> &[ProcessId] {
        &self.picks
    }

    /// Consumes the wrapper, returning the recorded picks.
    #[must_use]
    pub fn into_picks(self) -> Vec<ProcessId> {
        self.picks
    }

    /// The wrapped scheduler.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for Traced<S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        if ctx.step == 0 {
            self.picks.clear();
        }
        let picked = self.inner.pick(ctx);
        if let Some(p) = picked {
            self.picks.push(p);
        }
        picked
    }

    fn wants_step_previews(&self) -> bool {
        self.inner.wants_step_previews()
    }
}

/// Round-robin among the processes enabled at the current arrival clock;
/// when none of the live processes has arrived yet, the earliest arrival
/// is scheduled (the clock jumps to it).
fn pick_arrivals(
    ctx: &SchedContext<'_>,
    next: &mut usize,
    enable: impl Fn(usize) -> usize,
) -> Option<ProcessId> {
    let n = ctx.views.len();
    for _ in 0..n {
        let v = &ctx.views[*next % n];
        *next = (*next + 1) % n;
        if !v.done && enable(v.pid.index()) <= ctx.step {
            return Some(v.pid);
        }
    }
    ctx.live()
        .min_by_key(|v| enable(v.pid.index()))
        .map(|v| v.pid)
}

/// Phased arrival: processes join in waves of `wave` processes, one wave
/// every `gap` steps, and the arrived ones interleave round-robin. The
/// degenerate `wave >= n` is plain round-robin; `wave = 1` with a large
/// `gap` approaches the sequential schedule.
#[derive(Clone, Debug)]
pub struct Burst {
    wave: usize,
    gap: usize,
    next: usize,
}

impl Burst {
    /// A burst scheduler releasing `wave` processes every `gap` steps.
    ///
    /// # Panics
    ///
    /// Panics if `wave` is zero.
    #[must_use]
    pub fn new(wave: usize, gap: usize) -> Self {
        assert!(wave > 0, "wave size must be positive");
        Burst { wave, gap, next: 0 }
    }
}

impl Scheduler for Burst {
    fn name(&self) -> String {
        format!("burst(w{},g{})", self.wave, self.gap)
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        let (wave, gap) = (self.wave, self.gap);
        pick_arrivals(ctx, &mut self.next, |i| (i / wave) * gap)
    }
}

/// Per-process enable times: process `i` may not be scheduled before
/// step `enable[i]`; arrived processes interleave round-robin. This is
/// the fully general arrival pattern ([`Burst`] is the special case of
/// equal-size waves).
#[derive(Clone, Debug)]
pub struct Stagger {
    enable: Vec<usize>,
    next: usize,
}

impl Stagger {
    /// A stagger scheduler with an explicit enable time per process.
    /// Processes beyond the end of `enable` are enabled at step 0.
    #[must_use]
    pub fn new(enable: Vec<usize>) -> Self {
        Stagger { enable, next: 0 }
    }

    /// The linear ramp: process `i` enabled at step `i * stride`.
    #[must_use]
    pub fn stride(n: usize, stride: usize) -> Self {
        Stagger::new((0..n).map(|i| i * stride).collect())
    }
}

impl Scheduler for Stagger {
    fn name(&self) -> String {
        "stagger".into()
    }

    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        let enable = std::mem::take(&mut self.enable);
        let picked = pick_arrivals(ctx, &mut self.next, |i| enable.get(i).copied().unwrap_or(0));
        self.enable = enable;
        picked
    }
}

/// Runs each process of `order` to completion of one passage, one after
/// another — the *canonical sequential* schedule. The resulting execution
/// is canonical and its critical-section order is exactly `order`.
///
/// Implemented on the [`Sequential`] scheduler; the step budget is
/// `max_steps_per_process` for each entry of `order`, pooled.
///
/// # Errors
///
/// Returns [`RunError`] if the run needs more than
/// `order.len() * max_steps_per_process` steps in total (the algorithm is
/// not livelock-free when run solo after the prefix).
///
/// # Example
///
/// ```
/// use exclusion_shmem::sched::run_sequential;
/// use exclusion_shmem::ProcessId;
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(3);
/// let order: Vec<_> = ProcessId::all(3).collect();
/// let exec = run_sequential(&alg, &order, 10_000).unwrap();
/// assert!(exec.is_canonical(3));
/// assert_eq!(exec.critical_order(), order);
/// ```
pub fn run_sequential<A: Automaton>(
    alg: &A,
    order: &[ProcessId],
    max_steps_per_process: usize,
) -> Result<Execution, RunError> {
    let mut occurrences = vec![0usize; alg.processes()];
    for p in order {
        occurrences[p.index()] += 1;
    }
    let passages = occurrences.into_iter().max().unwrap_or(0);
    let mut sched = Sequential::new(order.to_vec());
    run_scheduler(
        alg,
        &mut sched,
        passages,
        max_steps_per_process.saturating_mul(order.len()),
    )
}

/// Runs all processes round-robin, each until it has completed `passages`
/// passages.
///
/// # Errors
///
/// Returns [`RunError`] if the run does not finish within `max_steps`.
pub fn run_round_robin<A: Automaton>(
    alg: &A,
    passages: usize,
    max_steps: usize,
) -> Result<Execution, RunError> {
    run_scheduler(alg, &mut RoundRobin::new(), passages, max_steps)
}

/// Runs all processes under a uniformly random (seeded) fair schedule,
/// each until it has completed `passages` passages.
///
/// # Errors
///
/// Returns [`RunError`] if the run does not finish within `max_steps`.
pub fn run_random<A: Automaton>(
    alg: &A,
    passages: usize,
    max_steps: usize,
    seed: u64,
) -> Result<Execution, RunError> {
    run_scheduler(alg, &mut Random::new(seed), passages, max_steps)
}

/// Generic scheduling driver: repeatedly asks `pick` for the next process
/// to step; stops (successfully) when `pick` returns `None`.
///
/// This closure-based entry point predates [`Scheduler`]; it remains the
/// lightest way to drive ad-hoc schedules (e.g. replaying a recorded pid
/// sequence). Policies worth naming should implement [`Scheduler`] and go
/// through [`run_scheduler`] instead.
///
/// # Errors
///
/// Returns [`RunError`] if `pick` keeps returning processes past
/// `max_steps`.
pub fn run_with<A, F>(alg: &A, max_steps: usize, mut pick: F) -> Result<Execution, RunError>
where
    A: Automaton,
    F: FnMut(&System<'_, A>) -> Option<ProcessId>,
{
    let mut sys = System::new(alg);
    let mut exec = Execution::new();
    for _ in 0..max_steps {
        match pick(&sys) {
            None => return Ok(exec),
            Some(p) => {
                exec.push(sys.step(p).step);
            }
        }
    }
    if pick(&sys).is_none() {
        return Ok(exec);
    }
    let completed = ProcessId::all(alg.processes())
        .filter(|&p| sys.passages(p) > 0)
        .count();
    Err(RunError {
        limit: max_steps,
        completed,
        processes: alg.processes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Alternator;

    #[test]
    fn sequential_is_canonical_in_any_order() {
        let alg = Alternator::new(4);
        // Alternator hands the token around in index order, so only the
        // identity order terminates when run sequentially; use it here.
        let order: Vec<_> = ProcessId::all(4).collect();
        let exec = run_sequential(&alg, &order, 1000).unwrap();
        assert!(exec.is_canonical(4));
        assert_eq!(exec.critical_order(), order);
    }

    #[test]
    fn sequential_detects_stuck_process() {
        let alg = Alternator::new(2);
        // p1 cannot enter before p0 hands over the token.
        let order = [ProcessId::new(1), ProcessId::new(0)];
        let err = run_sequential(&alg, &order, 100).unwrap_err();
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn sequential_supports_repeated_processes() {
        let alg = Alternator::new(1);
        let p0 = ProcessId::new(0);
        let exec = run_sequential(&alg, &[p0, p0, p0], 1000).unwrap();
        assert_eq!(exec.critical_order(), vec![p0, p0, p0]);
    }

    #[test]
    fn round_robin_completes_multiple_passages() {
        let alg = Alternator::new(3);
        let exec = run_round_robin(&alg, 2, 100_000).unwrap();
        assert!(exec.well_formed(3));
        assert!(exec.mutual_exclusion(3));
        assert_eq!(exec.critical_order().len(), 6);
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let alg = Alternator::new(3);
        let a = run_random(&alg, 1, 100_000, 42).unwrap();
        let b = run_random(&alg, 1, 100_000, 42).unwrap();
        let c = run_random(&alg, 1, 100_000, 43).unwrap();
        assert_eq!(a, b);
        assert!(a.is_canonical(3));
        assert!(c.is_canonical(3));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let alg = Alternator::new(2);
        let err = run_round_robin(&alg, 1, 3).unwrap_err();
        assert_eq!(err.limit, 3);
    }

    #[test]
    fn views_expose_the_sc_predicate() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        // Step p1 to its spin on `turn` (which p0 has not released).
        let p1 = ProcessId::new(1);
        sys.step(p1);
        let mut views = Vec::new();
        build_views(&sys, 1, true, &mut views);
        assert_eq!(views.len(), 2);
        // p0's pending try changes state but is not shared.
        assert!(!views[0].shared());
        assert!(views[0].changes_state);
        // p1's pending read is shared and free (spinning on 0).
        assert!(views[1].shared());
        assert!(!views[1].changes_state);
        assert!(!views[1].done);
    }

    /// The incremental-view contract: after every step of an adversarial
    /// run, the [`ViewTable`] equals a from-scratch rebuild — with and
    /// without `changes_state` previews.
    #[test]
    fn incremental_views_match_fresh_views_after_every_step() {
        for previews in [true, false] {
            let alg = Alternator::new(5);
            let passages = 3;
            let mut sched = GreedyAdversary::new();
            let mut sys = System::new(&alg);
            let mut table = ViewTable::new(&sys, passages, previews);
            let mut fresh = Vec::new();
            let mut finished = false;
            for step in 0..10_000 {
                build_views(&sys, passages, previews, &mut fresh);
                assert_eq!(table.views(), &fresh[..], "previews={previews} step={step}");
                let ctx = SchedContext {
                    step,
                    target_passages: passages,
                    views: table.views(),
                };
                let Some(p) = sched.pick(&ctx) else {
                    finished = true;
                    break;
                };
                let done = sys.step(p);
                table.apply(&sys, passages, &done);
            }
            assert!(finished, "adversarial run did not terminate");
        }
    }

    #[test]
    fn streaming_driver_reports_steps_and_outcomes_in_order() {
        let alg = Alternator::new(3);
        let mut outcomes = Vec::new();
        let steps = run_scheduler_with(&alg, &mut RoundRobin::new(), 1, 100_000, |done| {
            outcomes.push(*done);
        })
        .unwrap();
        assert_eq!(steps, outcomes.len());
        let exec = run_round_robin(&alg, 1, 100_000).unwrap();
        let recorded: Vec<_> = outcomes.iter().map(|o| o.step).collect();
        assert_eq!(exec.steps(), &recorded[..]);
    }

    #[test]
    fn greedy_adversary_terminates_and_is_deterministic() {
        let alg = Alternator::new(4);
        let a = run_scheduler(&alg, &mut GreedyAdversary::new(), 2, 100_000).unwrap();
        let b = run_scheduler(&alg, &mut GreedyAdversary::new(), 2, 100_000).unwrap();
        assert_eq!(a, b);
        assert!(a.well_formed(4));
        assert!(a.mutual_exclusion(4));
        assert_eq!(a.critical_order().len(), 8);
    }

    #[test]
    fn greedy_adversary_never_schedules_a_free_spin_when_charged_steps_exist() {
        // In the Alternator only the token holder can make progress;
        // everyone else's spin is free. Greedy must therefore drive the
        // token holder and never burn steps on spinners, matching the
        // (minimal) sequential step count exactly.
        let alg = Alternator::new(3);
        let greedy = run_scheduler(&alg, &mut GreedyAdversary::new(), 1, 100_000).unwrap();
        let order: Vec<_> = ProcessId::all(3).collect();
        let seq = run_sequential(&alg, &order, 100_000).unwrap();
        assert_eq!(greedy.len(), seq.len());
    }

    #[test]
    fn burst_and_stagger_complete_and_respect_arrival_order() {
        let alg = Alternator::new(4);
        for sched in [
            &mut Burst::new(2, 8) as &mut dyn Scheduler,
            &mut Stagger::stride(4, 6),
        ] {
            let exec = run_scheduler(&alg, sched, 1, 100_000).unwrap();
            assert!(exec.well_formed(4), "{}", sched.name());
            assert!(exec.mutual_exclusion(4), "{}", sched.name());
            assert_eq!(exec.critical_order().len(), 4, "{}", sched.name());
            // The token circulates in index order and arrivals are in
            // index order, so entries happen in index order too.
            assert_eq!(
                exec.critical_order(),
                ProcessId::all(4).collect::<Vec<_>>(),
                "{}",
                sched.name()
            );
        }
    }

    #[test]
    fn stagger_delays_late_processes() {
        // With an enormous enable time for p0 (the token holder), the
        // run must still terminate: the arrival-clock jump schedules the
        // earliest-enabled live process once no one else can run.
        let alg = Alternator::new(2);
        let mut sched = Stagger::new(vec![5_000, 0]);
        let exec = run_scheduler(&alg, &mut sched, 1, 100_000).unwrap();
        assert!(exec.mutual_exclusion(2));
        assert_eq!(exec.critical_order().len(), 2);
    }

    /// Schedulers hold per-run state now; a pick at step 0 must reset
    /// it so a reused scheduler reproduces its first run instead of
    /// returning an empty execution (Sequential) or underflowing its
    /// skip counts (GreedyAdversary).
    #[test]
    fn reused_schedulers_reproduce_their_first_run() {
        let alg = Alternator::new(3);
        let order: Vec<_> = ProcessId::all(3).collect();
        let mut seq = Sequential::new(order);
        let a = run_scheduler(&alg, &mut seq, 1, 10_000).unwrap();
        let b = run_scheduler(&alg, &mut seq, 1, 10_000).unwrap();
        assert!(!b.is_empty());
        assert_eq!(a, b);

        let mut greedy = GreedyAdversary::new();
        let a = run_scheduler(&alg, &mut greedy, 2, 100_000).unwrap();
        let b = run_scheduler(&alg, &mut greedy, 2, 100_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn script_replays_a_recorded_schedule_exactly() {
        let alg = Alternator::new(3);
        let exec = run_scheduler(&alg, &mut GreedyAdversary::new(), 2, 100_000).unwrap();
        let picks: Vec<_> = exec.steps().iter().map(|s| s.pid()).collect();
        let mut script = Script::new(picks.clone());
        let replayed = run_scheduler(&alg, &mut script, 2, 100_000).unwrap();
        assert_eq!(replayed, exec);
        assert_eq!(script.picks(), &picks[..]);
        // Reuse replays from the top (picks index on the step clock).
        let again = run_scheduler(&alg, &mut script, 2, 100_000).unwrap();
        assert_eq!(again, exec);
    }

    #[test]
    fn traced_records_exactly_the_executed_picks_and_resets_per_run() {
        let alg = Alternator::new(3);
        let mut traced = Traced::new(GreedyAdversary::new());
        let exec = run_scheduler(&alg, &mut traced, 2, 100_000).unwrap();
        let expected: Vec<_> = exec.steps().iter().map(|s| s.pid()).collect();
        assert_eq!(traced.picks(), &expected[..]);
        assert_eq!(traced.name(), "greedy-adversary");
        assert!(traced.wants_step_previews());
        // Reuse records the latest run, not an accumulation.
        let again = run_scheduler(&alg, &mut traced, 2, 100_000).unwrap();
        assert_eq!(again, exec);
        assert_eq!(traced.picks().len(), exec.len());
        // The trace replays bit-identically.
        let picks = traced.into_picks();
        let replayed = run_scheduler(&alg, &mut Script::new(picks), 2, 100_000).unwrap();
        assert_eq!(replayed, exec);
    }

    #[test]
    fn schedulers_are_usable_as_trait_objects() {
        let alg = Alternator::new(2);
        let mut boxed: Box<dyn Scheduler> = Box::new(RoundRobin::new());
        let exec = run_scheduler(&alg, boxed.as_mut(), 1, 100_000).unwrap();
        assert_eq!(exec.critical_order().len(), 2);
        assert_eq!(boxed.name(), "round-robin");
    }
}
