//! Schedulers: drivers that pick which process steps next and record the
//! resulting execution.
//!
//! All schedulers here are *fair* in the paper's sense (every process that
//! is not in its remainder section keeps being scheduled), so for a
//! livelock-free algorithm every run terminates; the step budget guards
//! against algorithms that are not.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::automaton::Automaton;
use crate::error::RunError;
use crate::execution::Execution;
use crate::ids::ProcessId;
use crate::system::System;

/// Runs each process of `order` to completion of one passage, one after
/// another — the *canonical sequential* schedule. The resulting execution
/// is canonical and its critical-section order is exactly `order`.
///
/// # Errors
///
/// Returns [`RunError`] if any single process needs more than
/// `max_steps_per_process` steps to finish its passage (the algorithm is
/// not livelock-free when run solo after the prefix).
///
/// # Example
///
/// ```
/// use exclusion_shmem::sched::run_sequential;
/// use exclusion_shmem::ProcessId;
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(3);
/// let order: Vec<_> = ProcessId::all(3).collect();
/// let exec = run_sequential(&alg, &order, 10_000).unwrap();
/// assert!(exec.is_canonical(3));
/// assert_eq!(exec.critical_order(), order);
/// ```
pub fn run_sequential<A: Automaton>(
    alg: &A,
    order: &[ProcessId],
    max_steps_per_process: usize,
) -> Result<Execution, RunError> {
    let mut sys = System::new(alg);
    let mut exec = Execution::new();
    for (done, &p) in order.iter().enumerate() {
        let target = sys.passages(p) + 1;
        let mut budget = max_steps_per_process;
        while sys.passages(p) < target {
            if budget == 0 {
                return Err(RunError {
                    limit: max_steps_per_process,
                    completed: done,
                    processes: alg.processes(),
                });
            }
            budget -= 1;
            exec.push(sys.step(p).step);
        }
    }
    Ok(exec)
}

/// Runs all processes round-robin, each until it has completed `passages`
/// passages.
///
/// # Errors
///
/// Returns [`RunError`] if the run does not finish within `max_steps`.
pub fn run_round_robin<A: Automaton>(
    alg: &A,
    passages: usize,
    max_steps: usize,
) -> Result<Execution, RunError> {
    let n = alg.processes();
    let mut next = 0usize;
    run_with(alg, max_steps, move |sys| {
        for _ in 0..n {
            let p = ProcessId::new(next);
            next = (next + 1) % n;
            if sys.passages(p) < passages {
                return Some(p);
            }
        }
        None
    })
}

/// Runs all processes under a uniformly random (seeded) fair schedule,
/// each until it has completed `passages` passages.
///
/// # Errors
///
/// Returns [`RunError`] if the run does not finish within `max_steps`.
pub fn run_random<A: Automaton>(
    alg: &A,
    passages: usize,
    max_steps: usize,
    seed: u64,
) -> Result<Execution, RunError> {
    let n = alg.processes();
    let mut rng = StdRng::seed_from_u64(seed);
    run_with(alg, max_steps, move |sys| {
        let live: Vec<ProcessId> = ProcessId::all(n)
            .filter(|&p| sys.passages(p) < passages)
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[rng.random_range(0..live.len())])
        }
    })
}

/// Generic scheduling driver: repeatedly asks `pick` for the next process
/// to step; stops (successfully) when `pick` returns `None`.
///
/// # Errors
///
/// Returns [`RunError`] if `pick` keeps returning processes past
/// `max_steps`.
pub fn run_with<A, F>(alg: &A, max_steps: usize, mut pick: F) -> Result<Execution, RunError>
where
    A: Automaton,
    F: FnMut(&System<'_, A>) -> Option<ProcessId>,
{
    let mut sys = System::new(alg);
    let mut exec = Execution::new();
    for _ in 0..max_steps {
        match pick(&sys) {
            None => return Ok(exec),
            Some(p) => {
                exec.push(sys.step(p).step);
            }
        }
    }
    if pick(&sys).is_none() {
        return Ok(exec);
    }
    let completed = ProcessId::all(alg.processes())
        .filter(|&p| sys.passages(p) > 0)
        .count();
    Err(RunError {
        limit: max_steps,
        completed,
        processes: alg.processes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Alternator;

    #[test]
    fn sequential_is_canonical_in_any_order() {
        let alg = Alternator::new(4);
        // Alternator hands the token around in index order, so only the
        // identity order terminates when run sequentially; use it here.
        let order: Vec<_> = ProcessId::all(4).collect();
        let exec = run_sequential(&alg, &order, 1000).unwrap();
        assert!(exec.is_canonical(4));
        assert_eq!(exec.critical_order(), order);
    }

    #[test]
    fn sequential_detects_stuck_process() {
        let alg = Alternator::new(2);
        // p1 cannot enter before p0 hands over the token.
        let order = [ProcessId::new(1), ProcessId::new(0)];
        let err = run_sequential(&alg, &order, 100).unwrap_err();
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn round_robin_completes_multiple_passages() {
        let alg = Alternator::new(3);
        let exec = run_round_robin(&alg, 2, 100_000).unwrap();
        assert!(exec.well_formed(3));
        assert!(exec.mutual_exclusion(3));
        assert_eq!(exec.critical_order().len(), 6);
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let alg = Alternator::new(3);
        let a = run_random(&alg, 1, 100_000, 42).unwrap();
        let b = run_random(&alg, 1, 100_000, 42).unwrap();
        let c = run_random(&alg, 1, 100_000, 43).unwrap();
        assert_eq!(a, b);
        assert!(a.is_canonical(3));
        assert!(c.is_canonical(3));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let alg = Alternator::new(2);
        let err = run_round_robin(&alg, 1, 3).unwrap_err();
        assert_eq!(err.limit, 3);
    }
}
