//! The spec grammar shared by the algorithm and scheduler registries:
//! `name`, optionally followed by `:key=value,key=value` parameters.
//!
//! A [`Spec`] is a *value* — comparable, printable, and round-trippable:
//! for every spec, `Spec::parse(&spec.label())` reproduces it exactly
//! (pinned by property tests). Registries resolve specs into live
//! handles; this module only owns the syntax and the shared error type,
//! so `exclusion-mutex`'s algorithm registry and `exclusion-workload`'s
//! scheduler registry speak the same language.
//!
//! # Grammar
//!
//! ```text
//! spec   := name [ ':' params ]
//! name   := [A-Za-z0-9_-]+
//! params := param ( ',' param )*
//! param  := key '=' value          (named)
//!         | value                  (positional; registries may accept
//!                                   legacy spellings like "burst:2x32")
//! ```
//!
//! # Example
//!
//! ```
//! use exclusion_shmem::spec::Spec;
//!
//! let spec = Spec::parse("burst:wave=2,gap=32").unwrap();
//! assert_eq!(spec.name, "burst");
//! assert_eq!(spec.get("wave"), Some("2"));
//! assert_eq!(Spec::parse(&spec.label()).unwrap(), spec);
//! ```

use std::error::Error;
use std::fmt;

/// Metadata for one parameter a registry entry accepts — what
/// `workload --list` prints next to the entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParamInfo {
    /// The `key` in `name:key=value`.
    pub key: &'static str,
    /// One-line description, including the default.
    pub help: &'static str,
}

/// A parsed spec: a registry entry name plus `key=value` parameters.
///
/// Positional (legacy) parameters are stored with an empty key; see the
/// module docs for the grammar.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Spec {
    /// The registry entry this spec names.
    pub name: String,
    /// `(key, value)` parameters in spelling order; positional values
    /// have an empty key.
    pub params: Vec<(String, String)>,
}

impl Spec {
    /// A bare spec with no parameters.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Spec {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Adds a named parameter (builder style).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Parses the `name[:k=v,…]` grammar.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Malformed`] on an empty name, an empty
    /// parameter, or an empty key/value around a `=`.
    pub fn parse(s: &str) -> Result<Spec, SpecError> {
        let malformed = |why: &str| SpecError::Malformed {
            spec: s.to_string(),
            why: why.to_string(),
        };
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (s, None),
        };
        if name.is_empty() {
            return Err(malformed("empty name"));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(malformed("name may only contain [A-Za-z0-9_-]"));
        }
        let mut params = Vec::new();
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(malformed("trailing `:` without parameters"));
            }
            for part in rest.split(',') {
                match part.split_once('=') {
                    Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                        params.push((k.to_string(), v.to_string()));
                    }
                    Some(_) => return Err(malformed("empty key or value in parameter")),
                    None if !part.is_empty() => params.push((String::new(), part.to_string())),
                    None => return Err(malformed("empty parameter")),
                }
            }
        }
        Ok(Spec {
            name: name.to_string(),
            params,
        })
    }

    /// The canonical spelling: `name` or `name:k=v,…`. Parsing the label
    /// reproduces the spec (`parse(label(x)) == Ok(x)`).
    #[must_use]
    pub fn label(&self) -> String {
        let mut out = self.name.clone();
        for (i, (k, v)) in self.params.iter().enumerate() {
            out.push(if i == 0 { ':' } else { ',' });
            if !k.is_empty() {
                out.push_str(k);
                out.push('=');
            }
            out.push_str(v);
        }
        out
    }

    /// The value of the named parameter, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the named parameter as a `usize` with a default, rejecting
    /// junk with a precise error.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParam`] when the value does not parse.
    pub fn usize_param(&self, key: &str, default: usize) -> Result<usize, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SpecError::InvalidParam {
                spec: self.label(),
                key: key.to_string(),
                value: v.to_string(),
                expected: "a non-negative integer".to_string(),
            }),
        }
    }

    /// [`usize_param`](Spec::usize_param) with a lower bound: a present
    /// value below `min` is rejected as out of range. Registries use
    /// this for parameters where zero is not a configuration but a
    /// contradiction (`patience=0` would disable the starvation valve
    /// the parameter exists to tune). An absent key still yields
    /// `default` unchecked — bounds constrain the user's spelling, not
    /// the registry's own fallback.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParam`] when the value does not
    /// parse or is below `min`.
    pub fn usize_param_at_least(
        &self,
        key: &str,
        default: usize,
        min: usize,
    ) -> Result<usize, SpecError> {
        let parsed = self.usize_param(key, default)?;
        match self.get(key) {
            Some(v) if parsed < min => Err(SpecError::InvalidParam {
                spec: self.label(),
                key: key.to_string(),
                value: v.to_string(),
                expected: format!("an integer >= {min}"),
            }),
            _ => Ok(parsed),
        }
    }

    /// Parses the named parameter as an `f64` constrained to
    /// `[min, max]`: a present value that does not parse, is not
    /// finite, or falls outside the range is rejected with the expected
    /// range spelled out. An absent key yields `default` unchecked —
    /// bounds constrain the user's spelling, not the registry's own
    /// fallback. Arrival-rate parameters (`poisson:rate=0.5`) resolve
    /// through this, so `rate=-1` fails loudly instead of wrapping or
    /// silently clamping.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParam`] when the value does not
    /// parse as a finite number or lies outside `[min, max]`.
    pub fn f64_param_in_range(
        &self,
        key: &str,
        default: f64,
        min: f64,
        max: f64,
    ) -> Result<f64, SpecError> {
        let Some(v) = self.get(key) else {
            return Ok(default);
        };
        let out_of_range = || SpecError::InvalidParam {
            spec: self.label(),
            key: key.to_string(),
            value: v.to_string(),
            expected: format!("a number in [{min}, {max}]"),
        };
        let parsed: f64 = v.parse().map_err(|_| out_of_range())?;
        if !parsed.is_finite() || parsed < min || parsed > max {
            return Err(out_of_range());
        }
        Ok(parsed)
    }

    /// Rejects parameters outside `known`, with an error naming the
    /// valid keys — registries call this so typos fail loudly instead of
    /// being ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownParam`] for the first unknown key
    /// (positional parameters are exempt; entries that do not take them
    /// should pass `allow_positional = false`).
    pub fn expect_params(&self, known: &[&str], allow_positional: bool) -> Result<(), SpecError> {
        let unknown = |key: &str| SpecError::UnknownParam {
            spec: self.label(),
            key: key.to_string(),
            known: known.iter().map(ToString::to_string).collect(),
            suggestion: suggest(key, known.iter().copied()),
        };
        for (k, v) in &self.params {
            if k.is_empty() {
                if allow_positional {
                    continue;
                }
                return Err(unknown(v));
            }
            if !known.contains(&k.as_str()) {
                return Err(unknown(k));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why a spec failed to parse or resolve. Shared by the algorithm and
/// scheduler registries so CLI and library callers render one error
/// vocabulary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecError {
    /// The spec text does not match the grammar.
    Malformed {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        why: String,
    },
    /// The name is not in the registry. Carries the registry contents
    /// (and the nearest valid name, if one is close) so the error is
    /// actionable.
    UnknownName {
        /// The name that failed to resolve.
        name: String,
        /// What kind of registry was searched (`"algorithm"`, `"scheduler"`).
        kind: &'static str,
        /// Every name the registry knows.
        known: Vec<String>,
        /// The closest registered name, if within editing distance.
        suggestion: Option<String>,
    },
    /// A parameter key the entry does not take.
    UnknownParam {
        /// The full spec.
        spec: String,
        /// The unknown key.
        key: String,
        /// Keys the entry accepts.
        known: Vec<String>,
        /// The closest accepted key, if within editing distance.
        suggestion: Option<String>,
    },
    /// The entry exists but cannot run at the requested process count.
    TooFewProcesses {
        /// The entry name.
        name: String,
        /// The requested process count.
        n: usize,
        /// The entry's floor.
        min_n: usize,
    },
    /// A parameter value that does not parse or is out of range.
    InvalidParam {
        /// The full spec.
        spec: String,
        /// The parameter key.
        key: String,
        /// The offending value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Malformed { spec, why } => {
                write!(f, "malformed spec `{spec}`: {why}")
            }
            SpecError::UnknownName {
                name,
                kind,
                known,
                suggestion,
            } => {
                write!(f, "unknown {kind} `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                write!(f, "; known: {}", known.join(", "))
            }
            SpecError::UnknownParam {
                spec,
                key,
                known,
                suggestion,
            } => {
                write!(f, "`{spec}`: unknown parameter `{key}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                if known.is_empty() {
                    write!(f, " (this entry takes no parameters)")
                } else {
                    write!(f, " (accepted: {})", known.join(", "))
                }
            }
            SpecError::TooFewProcesses { name, n, min_n } => {
                write!(f, "`{name}` needs at least {min_n} processes (got n = {n})")
            }
            SpecError::InvalidParam {
                spec,
                key,
                value,
                expected,
            } => {
                write!(
                    f,
                    "`{spec}`: parameter `{key}={value}` invalid; expected {expected}"
                )
            }
        }
    }
}

impl Error for SpecError {}

/// The nearest candidate to `name` within a small edit distance — the
/// "did you mean" behind registry errors (unknown entry names *and*
/// unknown parameter keys). Ties go to the earlier candidate; `None`
/// when nothing is close enough to help.
///
/// A `key=value` query is compared by its key part only: the value
/// carries no signal about which key was meant, and counting it would
/// both inflate the distance to the intended key and widen the
/// length-proportional cutoff until arbitrary keys qualify.
#[must_use]
pub fn suggest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<String> {
    let name = name.split_once('=').map_or(name, |(key, _)| key);
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        let d = edit_distance(name, c);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    // A suggestion further than half the name away is noise, not help.
    let (d, c) = best?;
    (d <= (name.chars().count() / 2).max(2)).then(|| c.to_string())
}

/// Levenshtein distance, O(|a|·|b|) time, O(|b|) space.
fn edit_distance(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b_chars.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (prev + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b_chars.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_params_reject_values_below_the_floor() {
        let spec = Spec::parse("fanlynch:patience=0").unwrap();
        let err = spec.usize_param_at_least("patience", 1, 1).unwrap_err();
        let SpecError::InvalidParam {
            value, expected, ..
        } = &err
        else {
            panic!("{err}")
        };
        assert_eq!(value, "0");
        assert_eq!(expected, "an integer >= 1");
        // The boundary passes; an absent key yields the default
        // unchecked (bounds constrain spellings, not fallbacks).
        let spec = Spec::parse("fanlynch:patience=1").unwrap();
        assert_eq!(spec.usize_param_at_least("patience", 1, 1).unwrap(), 1);
        let spec = Spec::parse("fanlynch").unwrap();
        assert_eq!(spec.usize_param_at_least("patience", 0, 1).unwrap(), 0);
    }

    #[test]
    fn float_params_in_range_parse_reject_and_default() {
        // In-range values parse, including scientific notation.
        let spec = Spec::parse("poisson:rate=0.5").unwrap();
        assert_eq!(
            spec.f64_param_in_range("rate", 1.0, 0.000001, 1000000.0)
                .unwrap(),
            0.5
        );
        let spec = Spec::parse("poisson:rate=2e3").unwrap();
        assert_eq!(
            spec.f64_param_in_range("rate", 1.0, 0.000001, 1000000.0)
                .unwrap(),
            2000.0
        );
        // Out-of-range, junk, and non-finite values all name the
        // expected range.
        for bad in ["-1", "0", "2000000", "fast", "nan", "inf"] {
            let spec = Spec::parse(&format!("poisson:rate={bad}")).unwrap();
            let err = spec
                .f64_param_in_range("rate", 1.0, 0.000001, 1000000.0)
                .unwrap_err();
            let SpecError::InvalidParam { key, expected, .. } = &err else {
                panic!("{bad}: {err}")
            };
            assert_eq!(key, "rate", "{bad}");
            assert_eq!(expected, "a number in [0.000001, 1000000]", "{bad}");
        }
        // Boundaries pass; an absent key yields the default unchecked.
        let spec = Spec::parse("poisson:rate=0.000001").unwrap();
        assert!(spec
            .f64_param_in_range("rate", 1.0, 0.000001, 1000000.0)
            .is_ok());
        let spec = Spec::parse("poisson").unwrap();
        assert_eq!(
            spec.f64_param_in_range("rate", -3.0, 0.000001, 1000000.0)
                .unwrap(),
            -3.0
        );
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for s in [
            "sequential",
            "burst:wave=2,gap=32",
            "stagger:stride=5",
            "filter:levels=7",
            "a-b_c9",
        ] {
            let spec = Spec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
            assert_eq!(Spec::parse(&spec.label()).unwrap(), spec);
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn positional_params_are_kept_with_empty_keys() {
        let spec = Spec::parse("burst:2x32").unwrap();
        assert_eq!(spec.params, vec![(String::new(), "2x32".to_string())]);
        // Positional values round-trip through the label too.
        assert_eq!(spec.label(), "burst:2x32");
        assert_eq!(Spec::parse(&spec.label()).unwrap(), spec);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for s in [
            "",
            ":x=1",
            "name:",
            "name:=1",
            "name:k=",
            "name:k=1,",
            "bad name",
        ] {
            assert!(Spec::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn param_helpers_validate() {
        let spec = Spec::parse("x:levels=3").unwrap();
        assert_eq!(spec.usize_param("levels", 9).unwrap(), 3);
        assert_eq!(spec.usize_param("absent", 9).unwrap(), 9);
        assert!(spec.expect_params(&["levels"], false).is_ok());
        let err = spec.expect_params(&["depth"], false).unwrap_err();
        assert!(matches!(err, SpecError::UnknownParam { .. }));
        assert!(err.to_string().contains("depth"));

        let bad = Spec::parse("x:levels=lots").unwrap();
        let err = bad.usize_param("levels", 9).unwrap_err();
        assert!(err.to_string().contains("levels=lots"));
    }

    #[test]
    fn suggestions_catch_near_misses_only() {
        let names = ["dekker-tree", "peterson", "bakery"];
        assert_eq!(suggest("bakey", names), Some("bakery".to_string()));
        assert_eq!(suggest("petersen", names), Some("peterson".to_string()));
        assert_eq!(suggest("zzzzzz", names), None);
        assert_eq!(suggest("x", []), None);
    }

    #[test]
    fn suggestions_score_key_value_queries_by_their_key() {
        let keys = ["patience", "wave", "gap"];
        // The `=value` tail neither inflates the distance to the
        // intended key …
        assert_eq!(
            suggest("patiense=3", keys),
            Some("patience".to_string()),
            "distance must be 1 (patiense→patience), not 3"
        );
        assert_eq!(suggest("wavee=2", keys), Some("wave".to_string()));
        // … nor widens the cutoff until junk qualifies: the key part
        // `x` is one character, so nothing within distance 2 exists.
        assert_eq!(suggest("x=999999999", keys), None);
    }

    #[test]
    fn unknown_param_errors_suggest_the_nearest_key() {
        let spec = Spec::parse("burst:wavee=2,gap=32").unwrap();
        let err = spec.expect_params(&["wave", "gap"], false).unwrap_err();
        let SpecError::UnknownParam { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), Some("wave"));
        assert!(err.to_string().contains("did you mean `wave`?"), "{err}");

        // A hopeless key still lists the accepted set, without a
        // suggestion.
        let spec = Spec::parse("burst:zzzzzz=1").unwrap();
        let err = spec.expect_params(&["wave", "gap"], false).unwrap_err();
        let SpecError::UnknownParam { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), None);
        assert!(err.to_string().contains("accepted: wave, gap"), "{err}");
    }

    #[test]
    fn error_display_lists_registry_contents() {
        let err = SpecError::UnknownName {
            name: "petersen".into(),
            kind: "algorithm",
            known: vec!["peterson".into(), "bakery".into()],
            suggestion: Some("peterson".into()),
        };
        let msg = err.to_string();
        assert!(msg.contains("did you mean `peterson`"));
        assert!(msg.contains("peterson, bakery"));
    }
}
