//! Process steps: register reads, register writes, and critical steps.
//!
//! An execution in the paper is an alternating sequence of system states
//! and steps; because both the processes and the registers are
//! deterministic, the sequence of steps alone identifies the execution
//! (paper, Section 3.1), and that is how this workspace represents them.

use std::fmt;

use crate::automaton::RmwOp;
use crate::ids::{ProcessId, RegisterId, Value};

/// The four critical steps `try_i`, `enter_i`, `exit_i` and `rem_i` that
/// delimit a process's trying, critical, exit and remainder sections.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CritKind {
    /// `try_i`: the process leaves its remainder section and starts
    /// competing for the critical section.
    Try,
    /// `enter_i`: the process enters the critical section.
    Enter,
    /// `exit_i`: the process leaves the critical section and starts its
    /// exit protocol.
    Exit,
    /// `rem_i`: the process returns to its remainder section.
    Rem,
}

impl CritKind {
    /// The critical step that follows `self` in the well-formed cycle
    /// `try → enter → exit → rem → try → …`.
    #[must_use]
    pub fn successor(self) -> CritKind {
        match self {
            CritKind::Try => CritKind::Enter,
            CritKind::Enter => CritKind::Exit,
            CritKind::Exit => CritKind::Rem,
            CritKind::Rem => CritKind::Try,
        }
    }
}

impl fmt::Display for CritKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CritKind::Try => "try",
            CritKind::Enter => "enter",
            CritKind::Exit => "exit",
            CritKind::Rem => "rem",
        };
        f.write_str(s)
    }
}

/// The coarse classification `type(e) ∈ {R, W, C}` of a step used
/// throughout the paper, extended with `RMW` for the simulator-only
/// read-modify-write steps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StepType {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// An atomic read-modify-write (simulator extension).
    Rmw,
    /// A critical step.
    Crit,
    /// A crash of one process (recoverable-mutex extension).
    Crash,
}

impl fmt::Display for StepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepType::Read => "R",
            StepType::Write => "W",
            StepType::Rmw => "RMW",
            StepType::Crit => "C",
            StepType::Crash => "X",
        };
        f.write_str(s)
    }
}

/// One step of one process.
///
/// `Read` does not record the value obtained: the value is a function of
/// the step's position in the execution and is recovered by [`replay`].
///
/// [`replay`]: crate::replay::replay
///
/// # Example
///
/// ```
/// use exclusion_shmem::{CritKind, ProcessId, RegisterId, Step, StepType};
/// let w = Step::write(ProcessId::new(0), RegisterId::new(2), 7);
/// assert_eq!(w.step_type(), StepType::Write);
/// assert_eq!(w.register(), Some(RegisterId::new(2)));
/// assert_eq!(w.value(), Some(7));
/// let c = Step::crit(ProcessId::new(1), CritKind::Enter);
/// assert_eq!(c.step_type(), StepType::Crit);
/// assert_eq!(c.register(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Step {
    /// `read_i(ℓ)`: process `pid` reads register `reg`.
    Read {
        /// The reading process (`own(e)` in the paper).
        pid: ProcessId,
        /// The register accessed.
        reg: RegisterId,
    },
    /// `write_i(ℓ, v)`: process `pid` writes `value` to register `reg`.
    Write {
        /// The writing process (`own(e)` in the paper).
        pid: ProcessId,
        /// The register accessed.
        reg: RegisterId,
        /// The value written (`val(e)` in the paper).
        value: Value,
    },
    /// An atomic read-modify-write by `pid` on `reg` (simulator
    /// extension; rejected by the lower-bound construction).
    Rmw {
        /// The acting process.
        pid: ProcessId,
        /// The register accessed.
        reg: RegisterId,
        /// The operation applied.
        op: RmwOp,
    },
    /// A critical step of `pid`.
    Crit {
        /// The process performing the critical step.
        pid: ProcessId,
        /// Which of the four critical steps this is.
        kind: CritKind,
    },
    /// A crash of `pid` (recoverable-mutex extension, Golab–Ramaraju
    /// model): the process's volatile state is wiped to its recovery
    /// state and its section resets to the remainder section; shared
    /// registers persist. Injected by a [`FaultPlan`], never produced
    /// by an automaton's transition function.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
}

impl Step {
    /// Convenience constructor for a read step.
    #[must_use]
    pub fn read(pid: ProcessId, reg: RegisterId) -> Self {
        Step::Read { pid, reg }
    }

    /// Convenience constructor for a write step.
    #[must_use]
    pub fn write(pid: ProcessId, reg: RegisterId, value: Value) -> Self {
        Step::Write { pid, reg, value }
    }

    /// Convenience constructor for a critical step.
    #[must_use]
    pub fn crit(pid: ProcessId, kind: CritKind) -> Self {
        Step::Crit { pid, kind }
    }

    /// Convenience constructor for a read-modify-write step.
    #[must_use]
    pub fn rmw(pid: ProcessId, reg: RegisterId, op: RmwOp) -> Self {
        Step::Rmw { pid, reg, op }
    }

    /// Convenience constructor for a crash step.
    #[must_use]
    pub fn crash(pid: ProcessId) -> Self {
        Step::Crash { pid }
    }

    /// The process performing this step (`own(e)`).
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        match *self {
            Step::Read { pid, .. }
            | Step::Write { pid, .. }
            | Step::Rmw { pid, .. }
            | Step::Crit { pid, .. }
            | Step::Crash { pid } => pid,
        }
    }

    /// The classification `type(e) ∈ {R, W, C}`.
    #[must_use]
    pub fn step_type(&self) -> StepType {
        match self {
            Step::Read { .. } => StepType::Read,
            Step::Write { .. } => StepType::Write,
            Step::Rmw { .. } => StepType::Rmw,
            Step::Crit { .. } => StepType::Crit,
            Step::Crash { .. } => StepType::Crash,
        }
    }

    /// The register accessed, if this is a shared-memory step.
    #[must_use]
    pub fn register(&self) -> Option<RegisterId> {
        match *self {
            Step::Read { reg, .. } | Step::Write { reg, .. } | Step::Rmw { reg, .. } => Some(reg),
            Step::Crit { .. } | Step::Crash { .. } => None,
        }
    }

    /// The value written, if this is a write step (`val(e)`).
    #[must_use]
    pub fn value(&self) -> Option<Value> {
        match *self {
            Step::Write { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The critical-step kind, if this is a critical step.
    #[must_use]
    pub fn crit_kind(&self) -> Option<CritKind> {
        match *self {
            Step::Crit { kind, .. } => Some(kind),
            _ => None,
        }
    }

    /// Whether this step accesses shared memory (is a read or a write).
    #[must_use]
    pub fn is_shared_access(&self) -> bool {
        !matches!(self, Step::Crit { .. } | Step::Crash { .. })
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Step::Read { pid, reg } => write!(f, "read_{}({})", pid.index(), reg),
            Step::Write { pid, reg, value } => {
                write!(f, "write_{}({}, {})", pid.index(), reg, value)
            }
            Step::Rmw { pid, reg, op } => write!(f, "rmw_{}({}, {:?})", pid.index(), reg, op),
            Step::Crit { pid, kind } => write!(f, "{}_{}", kind, pid.index()),
            Step::Crash { pid } => write!(f, "crash_{}", pid.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: usize) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn crit_cycle_is_well_formed_order() {
        assert_eq!(CritKind::Try.successor(), CritKind::Enter);
        assert_eq!(CritKind::Enter.successor(), CritKind::Exit);
        assert_eq!(CritKind::Exit.successor(), CritKind::Rem);
        assert_eq!(CritKind::Rem.successor(), CritKind::Try);
    }

    #[test]
    fn step_accessors() {
        let s = Step::read(p(4), r(1));
        assert_eq!(s.pid(), p(4));
        assert_eq!(s.step_type(), StepType::Read);
        assert_eq!(s.register(), Some(r(1)));
        assert_eq!(s.value(), None);
        assert_eq!(s.crit_kind(), None);
        assert!(s.is_shared_access());

        let s = Step::write(p(0), r(9), 42);
        assert_eq!(s.step_type(), StepType::Write);
        assert_eq!(s.value(), Some(42));
        assert!(s.is_shared_access());

        let s = Step::crit(p(2), CritKind::Rem);
        assert_eq!(s.step_type(), StepType::Crit);
        assert_eq!(s.register(), None);
        assert_eq!(s.crit_kind(), Some(CritKind::Rem));
        assert!(!s.is_shared_access());

        let s = Step::crash(p(3));
        assert_eq!(s.pid(), p(3));
        assert_eq!(s.step_type(), StepType::Crash);
        assert_eq!(s.register(), None);
        assert_eq!(s.value(), None);
        assert_eq!(s.crit_kind(), None);
        assert!(!s.is_shared_access());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Step::read(p(1), r(2)).to_string(), "read_1(r2)");
        assert_eq!(Step::write(p(0), r(3), 5).to_string(), "write_0(r3, 5)");
        assert_eq!(Step::crit(p(7), CritKind::Try).to_string(), "try_7");
        assert_eq!(Step::crash(p(4)).to_string(), "crash_4");
    }

    #[test]
    fn step_equality_distinguishes_fields() {
        assert_ne!(Step::read(p(0), r(1)), Step::read(p(0), r(2)));
        assert_ne!(Step::write(p(0), r(1), 1), Step::write(p(0), r(1), 2));
        assert_ne!(
            Step::crit(p(0), CritKind::Try),
            Step::crit(p(0), CritKind::Enter)
        );
    }
}
