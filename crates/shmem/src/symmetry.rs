//! Process-permutation symmetry: permutations, snapshot relabelling,
//! and orbit canonicalization.
//!
//! Mutual exclusion algorithms that treat every process identically
//! (no id-ordered scans, no id-indexed register banks) induce a
//! transition system on which the symmetric group over process indices
//! acts by automorphisms: relabelling the processes of a reachable
//! configuration yields another reachable configuration with the same
//! future behavior. Exhaustive exploration then only needs one
//! representative per orbit, cutting the state space by a factor
//! approaching `n!`.
//!
//! This module provides the group element ([`Perm`]), the action
//! ([`permute_snapshot`]), and the representative chooser
//! ([`canonicalize_snapshot`]). Which algorithms may use them is
//! declared — and contractually constrained — by
//! [`Automaton::symmetric`](crate::Automaton::symmetric).

use crate::dynamic::{DynAutomaton, DynState};
use crate::ids::{ProcessId, RegisterId};
use crate::system::{Section, Snapshot};

/// A permutation of the process indices `0..n`, stored as the forward
/// map *old index → new index*.
///
/// `Perm` is the group element threaded through every symmetry hook:
/// [`permute_snapshot`] applies it to a whole configuration,
/// [`canonicalize_snapshot`] returns the one it used, and explorers
/// compose the returned permutations to de-canonicalize witness
/// schedules back into replayable coordinates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Perm {
    map: Vec<usize>,
}

impl Perm {
    /// The identity permutation on `n` processes.
    #[must_use]
    pub fn identity(n: usize) -> Perm {
        Perm {
            map: (0..n).collect(),
        }
    }

    /// Builds a permutation from its forward map (`map[i]` is the new
    /// index of old process `i`).
    ///
    /// # Panics
    ///
    /// When `map` is not a bijection on `0..map.len()`.
    #[must_use]
    pub fn from_map(map: Vec<usize>) -> Perm {
        let n = map.len();
        let mut seen = vec![false; n];
        for &t in &map {
            assert!(t < n && !seen[t], "not a bijection on 0..{n}: {map:?}");
            seen[t] = true;
        }
        Perm { map }
    }

    /// Number of processes this permutation acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the permutation acts on zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &t)| i == t)
    }

    /// The new index of old index `i`.
    #[must_use]
    pub fn apply_index(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The new id of old process `p`.
    #[must_use]
    pub fn apply(&self, p: ProcessId) -> ProcessId {
        ProcessId::new(self.map[p.index()])
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &t) in self.map.iter().enumerate() {
            inv[t] = i;
        }
        Perm { map: inv }
    }

    /// Composition `next ∘ self`: applies `self` first, then `next`.
    ///
    /// # Panics
    ///
    /// When the two permutations act on different process counts.
    #[must_use]
    pub fn then(&self, next: &Perm) -> Perm {
        assert_eq!(self.len(), next.len(), "composing mismatched perms");
        Perm {
            map: self.map.iter().map(|&t| next.map[t]).collect(),
        }
    }
}

/// Applies `perm` to a whole configuration: process `i`'s state
/// (relabelled via
/// [`dyn_permute_state`](DynAutomaton::dyn_permute_state)), section,
/// and passage count move to slot `perm(i)`, and every register value
/// is rewritten via
/// [`dyn_permute_register_value`](DynAutomaton::dyn_permute_register_value).
/// Register *indices* do not move — the symmetry contract requires
/// registers to be global.
///
/// For an algorithm honoring the
/// [`symmetric`](crate::Automaton::symmetric) contract this is an
/// automorphism of the transition system: stepping process `p` and
/// then permuting equals permuting and then stepping `perm(p)`, and it
/// preserves the mutual exclusion predicate, the passage goal, and
/// every permutation-invariant cost.
///
/// # Panics
///
/// When `perm` does not act on exactly the snapshot's process count.
#[must_use]
pub fn permute_snapshot(
    alg: &dyn DynAutomaton,
    snap: &Snapshot<DynState>,
    perm: &Perm,
) -> Snapshot<DynState> {
    let n = snap.states().len();
    assert_eq!(perm.len(), n, "perm acts on a different process count");
    let mut states: Vec<Option<DynState>> = vec![None; n];
    let mut sections = vec![Section::default(); n];
    let mut passages = vec![0usize; n];
    for i in 0..n {
        let t = perm.apply_index(i);
        states[t] = Some(alg.dyn_permute_state(&snap.states()[i], perm));
        sections[t] = snap.sections()[i];
        passages[t] = snap.passages()[i];
    }
    let regs = snap
        .registers()
        .iter()
        .enumerate()
        .map(|(j, &v)| alg.dyn_permute_register_value(RegisterId::new(j), v, perm))
        .collect();
    Snapshot::from_parts(
        states.into_iter().map(Option::unwrap).collect(),
        regs,
        sections,
        passages,
    )
}

/// Total order on per-process local data, used to sort processes into
/// their canonical slots. All states of one algorithm pack into the
/// same number of inline words, so zero-padding cannot collide.
type Key = ([u64; 4], u8, usize);

fn section_rank(s: Section) -> u8 {
    match s {
        Section::Remainder => 0,
        Section::Trying => 1,
        Section::Critical => 2,
        Section::Exit => 3,
    }
}

/// Chooses the canonical representative of `snap`'s orbit under the
/// process-permutation group and returns it together with the
/// permutation that maps `snap` onto it.
///
/// # Contract
///
/// For an algorithm whose [`symmetric`](crate::Automaton::symmetric)
/// contract holds, the result is a pure function of the **orbit**:
///
/// * **permutation invariance** — for every permutation π,
///   `canonicalize_snapshot(alg, permute_snapshot(alg, s, π)).0`
///   equals `canonicalize_snapshot(alg, s).0`;
/// * **idempotence** — canonicalizing a canonical snapshot returns it
///   unchanged (a direct consequence of invariance);
/// * **membership** — the representative is
///   `permute_snapshot(alg, snap, perm)` for the returned `perm`, so
///   it is itself a legal configuration with identical future behavior
///   modulo relabelling.
///
/// The representative is computed in `O(n log n + registers)` — no
/// factorial enumeration: processes are sorted by their local data
/// (packed state words, section, passage count); ties are broken by
/// the first register whose value references the process (in register
/// index order, via [`pid_in_value`](crate::Automaton::pid_in_value));
/// processes still tied after that are bit-identical and unreferenced,
/// hence fully interchangeable — any assignment yields the same
/// representative.
///
/// Falls back to the **identity** permutation (always sound, no
/// reduction) when the algorithm does not declare symmetry, when it
/// has fewer than two processes, or when its states use the boxed
/// (non-word-packed) representation, which admits no total order.
///
/// One caveat completes the contract: the tie-break inspects register
/// references only, so a symmetric algorithm whose *states* embed
/// process ids (nontrivial
/// [`permute_state`](crate::Automaton::permute_state)) must ensure
/// every such embedded id is also visible through some register value;
/// otherwise two bit-identical processes may not actually be
/// interchangeable. All symmetric algorithms in this suite have
/// pid-free states, making the condition vacuous.
#[must_use]
pub fn canonicalize_snapshot(
    alg: &dyn DynAutomaton,
    snap: &Snapshot<DynState>,
) -> (Snapshot<DynState>, Perm) {
    let n = snap.states().len();
    if !alg.dyn_symmetric() || n <= 1 {
        return (snap.clone(), Perm::identity(n));
    }
    let mut keys: Vec<Key> = Vec::with_capacity(n);
    for i in 0..n {
        let Some(words) = snap.states()[i].words() else {
            // Boxed states admit no total order; stay sound via identity.
            return (snap.clone(), Perm::identity(n));
        };
        let mut padded = [0u64; 4];
        padded[..words.len()].copy_from_slice(words);
        keys.push((padded, section_rank(snap.sections()[i]), snap.passages()[i]));
    }
    // Stable sort groups equal keys into contiguous slot runs.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let mut run_of = vec![0usize; n];
    let mut cursor: Vec<usize> = Vec::new(); // per run: next free slot
    let mut run = 0usize;
    for pos in 0..n {
        if pos > 0 && keys[order[pos]] != keys[order[pos - 1]] {
            run += 1;
        }
        if run == cursor.len() {
            cursor.push(pos);
        }
        run_of[order[pos]] = run;
    }
    let mut map = vec![usize::MAX; n];
    let assign = |p: usize, map: &mut [usize], cursor: &mut [usize]| {
        if map[p] == usize::MAX {
            map[p] = cursor[run_of[p]];
            cursor[run_of[p]] += 1;
        }
    };
    // Tie-break within runs: first register reference wins the lowest
    // slot. Scanning registers in index order keeps the choice a
    // function of the orbit, not of the incoming labelling.
    for j in 0..alg.registers() {
        if let Some(p) = alg.dyn_pid_in_value(RegisterId::new(j), snap.registers()[j]) {
            if p.index() < n {
                assign(p.index(), &mut map, &mut cursor);
            }
        }
    }
    // Leftovers are interchangeable; any deterministic fill works.
    for p in 0..n {
        assign(p, &mut map, &mut cursor);
    }
    let perm = Perm::from_map(map);
    if perm.is_identity() {
        return (snap.clone(), perm);
    }
    (permute_snapshot(alg, snap, &perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, NextStep, Observation};
    use crate::dynamic::{DynRef, Packed};
    use crate::ids::Value;
    use crate::step::CritKind;
    use crate::system::System;

    #[test]
    fn perm_algebra_holds() {
        let p = Perm::from_map(vec![2, 0, 1]);
        assert!(!p.is_identity());
        assert_eq!(p.apply_index(0), 2);
        assert_eq!(p.inverse().then(&p).map, Perm::identity(3).map);
        assert_eq!(p.then(&p.inverse()).map, Perm::identity(3).map);
        assert_eq!(p.apply(ProcessId::new(1)), ProcessId::new(0));
        assert!(Perm::identity(4).is_identity());
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn non_bijections_are_rejected() {
        let _ = Perm::from_map(vec![0, 0, 1]);
    }

    /// A minimal fully symmetric automaton: each process writes its id
    /// (+1) to a single register, then enters when it reads itself.
    struct OwnId {
        n: usize,
    }

    impl Automaton for OwnId {
        type State = u8;
        fn processes(&self) -> usize {
            self.n
        }
        fn registers(&self) -> usize {
            1
        }
        fn initial_state(&self, _p: ProcessId) -> u8 {
            0
        }
        fn next_step(&self, p: ProcessId, s: &u8) -> NextStep {
            match s {
                0 => NextStep::Crit(CritKind::Try),
                1 => NextStep::Write(RegisterId::new(0), p.index() as Value + 1),
                2 => NextStep::Read(RegisterId::new(0)),
                3 => NextStep::Crit(CritKind::Enter),
                4 => NextStep::Crit(CritKind::Exit),
                _ => NextStep::Crit(CritKind::Rem),
            }
        }
        fn observe(&self, p: ProcessId, s: &u8, o: Observation) -> u8 {
            match (*s, o) {
                (2, Observation::Read(v)) => {
                    if v == p.index() as Value + 1 {
                        3
                    } else {
                        2
                    }
                }
                (5, _) => 0,
                _ => s + 1,
            }
        }
        fn symmetric(&self) -> bool {
            true
        }
        fn permute_register_value(&self, _r: RegisterId, v: Value, perm: &Perm) -> Value {
            if v == 0 {
                0
            } else {
                perm.apply_index(v as usize - 1) as Value + 1
            }
        }
        fn pid_in_value(&self, _r: RegisterId, v: Value) -> Option<ProcessId> {
            (v > 0).then(|| ProcessId::new(v as usize - 1))
        }
    }

    fn all_perms(n: usize) -> Vec<Perm> {
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..n).collect();
        permute_rec(&mut idx, 0, &mut out);
        out
    }

    fn permute_rec(idx: &mut Vec<usize>, k: usize, out: &mut Vec<Perm>) {
        if k == idx.len() {
            out.push(Perm::from_map(idx.clone()));
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute_rec(idx, k + 1, out);
            idx.swap(k, i);
        }
    }

    #[test]
    fn canonicalization_is_invariant_and_idempotent_along_a_run() {
        let alg = Packed(OwnId { n: 3 });
        let dref = DynRef(&alg);
        let mut sys = System::new(&dref);
        let perms = all_perms(3);
        // Drive an asymmetric-looking interleaving and check every
        // prefix snapshot.
        let schedule = [0usize, 1, 0, 0, 2, 1, 0, 1, 2, 0, 1];
        for &p in &schedule {
            sys.step(ProcessId::new(p));
            let snap = sys.snapshot();
            let (canon, used) = canonicalize_snapshot(&alg, &snap);
            // Membership: the representative is the permuted original.
            assert_eq!(canon, permute_snapshot(&alg, &snap, &used));
            // Idempotence.
            let (again, _) = canonicalize_snapshot(&alg, &canon);
            assert_eq!(again, canon);
            // Invariance over the whole orbit.
            for pi in &perms {
                let relabelled = permute_snapshot(&alg, &snap, pi);
                let (c2, _) = canonicalize_snapshot(&alg, &relabelled);
                assert_eq!(c2, canon, "orbit member disagrees under {pi:?}");
            }
        }
    }

    #[test]
    fn asymmetric_algorithms_fall_back_to_identity() {
        struct NotSym;
        impl Automaton for NotSym {
            type State = u8;
            fn processes(&self) -> usize {
                2
            }
            fn registers(&self) -> usize {
                1
            }
            fn initial_state(&self, _p: ProcessId) -> u8 {
                0
            }
            fn next_step(&self, _p: ProcessId, _s: &u8) -> NextStep {
                NextStep::Crit(CritKind::Try)
            }
            fn observe(&self, _p: ProcessId, s: &u8, _o: Observation) -> u8 {
                *s
            }
        }
        let alg = Packed(NotSym);
        let dref = DynRef(&alg);
        let sys = System::new(&dref);
        let snap = sys.snapshot();
        let (canon, perm) = canonicalize_snapshot(&alg, &snap);
        assert_eq!(canon, snap);
        assert!(perm.is_identity());
    }
}
