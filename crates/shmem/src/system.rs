//! A live simulation of an algorithm: process states, register contents,
//! and per-process section tracking.

use std::fmt;

use crate::automaton::{Automaton, NextStep, Observation};
use crate::error::ReplayError;
use crate::ids::{ProcessId, RegisterId, Value};
use crate::step::{CritKind, Step};

/// Which of the four sections a process is currently in, per the paper's
/// well-formedness condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Section {
    /// No critical step yet, or the last one was `rem`.
    #[default]
    Remainder,
    /// Last critical step was `try`.
    Trying,
    /// Last critical step was `enter`.
    Critical,
    /// Last critical step was `exit`.
    Exit,
}

impl Section {
    /// The section reached by performing the given critical step.
    ///
    /// Returns `None` when the step is not permitted in this section
    /// (violating well-formedness).
    #[must_use]
    pub fn after(self, kind: CritKind) -> Option<Section> {
        match (self, kind) {
            (Section::Remainder, CritKind::Try) => Some(Section::Trying),
            (Section::Trying, CritKind::Enter) => Some(Section::Critical),
            (Section::Critical, CritKind::Exit) => Some(Section::Exit),
            (Section::Exit, CritKind::Rem) => Some(Section::Remainder),
            _ => None,
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Section::Remainder => "remainder",
            Section::Trying => "trying",
            Section::Critical => "critical",
            Section::Exit => "exit",
        };
        f.write_str(s)
    }
}

/// A canonical, hashable image of a [`System`]'s complete state: every
/// process state, every register value, every section, every passage
/// count.
///
/// Two snapshots of the same algorithm compare equal exactly when the
/// systems they were taken from would behave identically from that
/// point on — which is what makes a snapshot usable as a transposition
/// key in exhaustive state-space exploration (`exclusion-explore`).
/// `Hash` mirrors `Eq`, including through erased
/// [`DynState`](crate::dynamic::DynState)s, whose hashing forwards to
/// the typed state's `Hash` impl (boxed) or to the packed words
/// (inline).
///
/// Snapshots round-trip bit-identically:
/// [`System::from_snapshot`] followed by [`System::snapshot`]
/// reproduces the original (pinned by property tests).
///
/// # Example
///
/// ```
/// use exclusion_shmem::{ProcessId, System};
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(2);
/// let mut sys = System::new(&alg);
/// let before = sys.snapshot();
/// sys.step(ProcessId::new(0));
/// assert_ne!(sys.snapshot(), before);
/// // Restore and re-snapshot: bit-identical.
/// let restored = System::from_snapshot(&alg, &before);
/// assert_eq!(restored.snapshot(), before);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Snapshot<S> {
    states: Vec<S>,
    regs: Vec<Value>,
    sections: Vec<Section>,
    passages: Vec<usize>,
}

impl<S> Snapshot<S> {
    /// Assembles a snapshot from raw components. Callers that build
    /// snapshots that did not come from a live [`System`] — the
    /// symmetry canonicalizer, the explorer's spilled-frontier decoder
    /// — must preserve the invariant that all per-process vectors share
    /// one length (debug-asserted here).
    pub fn from_parts(
        states: Vec<S>,
        regs: Vec<Value>,
        sections: Vec<Section>,
        passages: Vec<usize>,
    ) -> Snapshot<S> {
        debug_assert_eq!(states.len(), sections.len());
        debug_assert_eq!(states.len(), passages.len());
        Snapshot {
            states,
            regs,
            sections,
            passages,
        }
    }

    /// Per-process states, indexed by process.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Register values, indexed by register.
    #[must_use]
    pub fn registers(&self) -> &[Value] {
        &self.regs
    }

    /// Per-process sections, indexed by process.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Per-process completed passage counts, indexed by process.
    #[must_use]
    pub fn passages(&self) -> &[usize] {
        &self.passages
    }

    /// Processes currently in their critical section.
    pub fn in_critical(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.sections
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Section::Critical)
            .map(|(i, _)| ProcessId::new(i))
    }
}

/// The outcome of executing one step on a [`System`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Executed {
    /// The step that was executed.
    pub step: Step,
    /// Whether the acting process's state changed — the unit of cost in
    /// the state-change model (Definition 3.1) when the step accesses
    /// shared memory.
    pub state_changed: bool,
    /// The value obtained, if the step was a read.
    pub read_value: Option<Value>,
}

/// A running instance of an algorithm: all process states, all register
/// values, and bookkeeping (sections and completed passages).
///
/// # Example
///
/// ```
/// use exclusion_shmem::{ProcessId, Section, System};
/// use exclusion_shmem::testing::Alternator;
///
/// let alg = Alternator::new(2);
/// let mut sys = System::new(&alg);
/// let p0 = ProcessId::new(0);
/// // Drive p0 through one full passage.
/// while sys.passages(p0) == 0 {
///     sys.step(p0);
/// }
/// assert_eq!(sys.section(p0), Section::Remainder);
/// ```
pub struct System<'a, A: Automaton> {
    alg: &'a A,
    states: Vec<A::State>,
    regs: Vec<Value>,
    sections: Vec<Section>,
    passages: Vec<usize>,
}

impl<'a, A: Automaton> System<'a, A> {
    /// Creates a system in the default initial state `s0`: every process
    /// in its initial state, every register at its initial value.
    #[must_use]
    pub fn new(alg: &'a A) -> Self {
        let n = alg.processes();
        let states = ProcessId::all(n).map(|p| alg.initial_state(p)).collect();
        let regs = RegisterId::all(alg.registers())
            .map(|r| alg.initial_value(r))
            .collect();
        System {
            alg,
            states,
            regs,
            sections: vec![Section::Remainder; n],
            passages: vec![0; n],
        }
    }

    /// Reconstructs the system a [`Snapshot`] was taken from.
    ///
    /// The algorithm must be the one (or an identically configured
    /// instance of the one) that produced the snapshot; restoring a
    /// snapshot into a different algorithm is out of contract, exactly
    /// like feeding a foreign state to an erased automaton.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's dimensions do not match the algorithm's
    /// process and register counts.
    #[must_use]
    pub fn from_snapshot(alg: &'a A, snap: &Snapshot<A::State>) -> Self {
        assert_eq!(
            snap.states.len(),
            alg.processes(),
            "snapshot process count does not match the algorithm"
        );
        assert_eq!(
            snap.regs.len(),
            alg.registers(),
            "snapshot register count does not match the algorithm"
        );
        System {
            alg,
            states: snap.states.clone(),
            regs: snap.regs.clone(),
            sections: snap.sections.clone(),
            passages: snap.passages.clone(),
        }
    }

    /// Captures the complete current state as a canonical, hashable
    /// [`Snapshot`] — the transposition key of exhaustive exploration.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<A::State> {
        Snapshot {
            states: self.states.clone(),
            regs: self.regs.clone(),
            sections: self.sections.clone(),
            passages: self.passages.clone(),
        }
    }

    /// The algorithm this system runs.
    #[must_use]
    pub fn algorithm(&self) -> &'a A {
        self.alg
    }

    /// Number of processes.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.states.len()
    }

    /// Current state of a process.
    #[must_use]
    pub fn state(&self, pid: ProcessId) -> &A::State {
        &self.states[pid.index()]
    }

    /// Current value of a register.
    #[must_use]
    pub fn register(&self, reg: RegisterId) -> Value {
        self.regs[reg.index()]
    }

    /// All register values, indexed by register.
    #[must_use]
    pub fn registers(&self) -> &[Value] {
        &self.regs
    }

    /// Current section of a process.
    #[must_use]
    pub fn section(&self, pid: ProcessId) -> Section {
        self.sections[pid.index()]
    }

    /// How many complete passages (ending in `rem`) a process has made.
    #[must_use]
    pub fn passages(&self, pid: ProcessId) -> usize {
        self.passages[pid.index()]
    }

    /// Processes currently in their critical section.
    pub fn in_critical(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.sections
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Section::Critical)
            .map(|(i, _)| ProcessId::new(i))
    }

    /// The step process `pid` will perform next (δ applied to its state).
    #[must_use]
    pub fn peek(&self, pid: ProcessId) -> NextStep {
        self.alg.next_step(pid, self.state(pid))
    }

    /// Whether `pid`'s state would change if it read `value` right now —
    /// the `SC` predicate of the paper's Figure 1, evaluated against this
    /// system's current state of `pid`.
    ///
    /// Meaningful when `pid`'s next step is a read; callers are expected
    /// to check that first.
    #[must_use]
    pub fn read_changes_state(&self, pid: ProcessId, value: Value) -> bool {
        self.alg
            .observe_changes(pid, self.state(pid), Observation::Read(value))
    }

    /// Whether executing `pid`'s next step *right now* would change its
    /// state — the per-step charge of the SC cost model, evaluated
    /// against the current register contents without mutating anything.
    ///
    /// Schedulers use this to see, before committing to a step, whether
    /// it would be billed: a busy-wait read that will see the value it is
    /// already spinning on returns `false` here.
    #[must_use]
    pub fn step_changes_state(&self, pid: ProcessId) -> bool {
        let obs = match self.peek(pid) {
            NextStep::Read(reg) => Observation::Read(self.register(reg)),
            NextStep::Write(..) => Observation::Write,
            NextStep::Rmw(reg, _) => Observation::Rmw(self.register(reg)),
            NextStep::Crit(_) => Observation::Crit,
        };
        self.alg.observe_changes(pid, self.state(pid), obs)
    }

    /// Executes the next step of `pid` and returns what happened.
    ///
    /// # Panics
    ///
    /// Panics if the automaton requests a critical step that violates
    /// well-formedness or accesses an out-of-range register — both are
    /// bugs in the algorithm under simulation, not runtime conditions.
    pub fn step(&mut self, pid: ProcessId) -> Executed {
        let next = self.peek(pid);
        self.apply(pid, next)
    }

    /// Crashes process `pid` (Golab–Ramaraju model): its volatile state
    /// is reset to [`Automaton::recover_state`], its section returns to
    /// the remainder section, and its passage count is untouched. Shared
    /// registers persist — any stale ownership the process left behind
    /// stays visible to everyone.
    ///
    /// Crashes are *injected* (by a [`FaultPlan`](crate::fault::FaultPlan)
    /// or an adversary), never produced by the automaton's transition
    /// function. The returned [`Executed`] records a [`Step::Crash`];
    /// `state_changed` reports whether the wipe actually changed the
    /// process's state (a crash in the remainder section with default
    /// recovery is a no-op), and crash steps are never charged by any
    /// cost model.
    pub fn crash(&mut self, pid: ProcessId) -> Executed {
        let i = pid.index();
        let recovered = self.alg.recover_state(pid);
        let state_changed = recovered != self.states[i] || self.sections[i] != Section::Remainder;
        self.states[i] = recovered;
        self.sections[i] = Section::Remainder;
        Executed {
            step: Step::crash(pid),
            state_changed,
            read_value: None,
        }
    }

    /// Executes `step` for its named process if (and only if) it is
    /// exactly what the automaton would perform; used by replay.
    ///
    /// A recorded [`Step::Crash`] is always accepted (crashes are
    /// injected, not produced by δ) and performs [`System::crash`].
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Mismatch`] when the recorded step diverges
    /// from the automaton, [`ReplayError::InvalidProcess`] when it names a
    /// process that does not exist. The `index` in the error is `0`;
    /// callers add their own position information.
    pub fn execute_expected(&mut self, step: Step) -> Result<Executed, ReplayError> {
        let pid = step.pid();
        if pid.index() >= self.processes() {
            return Err(ReplayError::InvalidProcess {
                index: 0,
                pid,
                processes: self.processes(),
            });
        }
        if let Step::Crash { .. } = step {
            return Ok(self.crash(pid));
        }
        let next = self.peek(pid);
        let matches = match (next, step) {
            (NextStep::Read(r), Step::Read { reg, .. }) => r == reg,
            (NextStep::Write(r, v), Step::Write { reg, value, .. }) => r == reg && v == value,
            (NextStep::Rmw(r, o), Step::Rmw { reg, op, .. }) => r == reg && o == op,
            (NextStep::Crit(k), Step::Crit { kind, .. }) => k == kind,
            _ => false,
        };
        if !matches {
            return Err(ReplayError::Mismatch {
                index: 0,
                expected: next,
                found: step,
            });
        }
        Ok(self.apply(pid, next))
    }

    fn apply(&mut self, pid: ProcessId, next: NextStep) -> Executed {
        let i = pid.index();
        let (step, obs, read_value) = match next {
            NextStep::Read(reg) => {
                let v = self.regs[reg.index()];
                (Step::read(pid, reg), Observation::Read(v), Some(v))
            }
            NextStep::Write(reg, value) => {
                self.regs[reg.index()] = value;
                (Step::write(pid, reg, value), Observation::Write, None)
            }
            NextStep::Rmw(reg, op) => {
                let old = self.regs[reg.index()];
                self.regs[reg.index()] = op.apply(old);
                (Step::rmw(pid, reg, op), Observation::Rmw(old), Some(old))
            }
            NextStep::Crit(kind) => {
                let sect = self.sections[i].after(kind).unwrap_or_else(|| {
                    panic!("{pid} performed {kind} in {} section", self.sections[i])
                });
                self.sections[i] = sect;
                if kind == CritKind::Rem {
                    self.passages[i] += 1;
                }
                (Step::crit(pid, kind), Observation::Crit, None)
            }
        };
        let state_changed = self.alg.observe_in_place(pid, &mut self.states[i], obs);
        Executed {
            step,
            state_changed,
            read_value,
        }
    }
}

// Manual impl: `A` itself need not be `Clone` (it is only borrowed).
impl<A: Automaton> Clone for System<'_, A> {
    fn clone(&self) -> Self {
        System {
            alg: self.alg,
            states: self.states.clone(),
            regs: self.regs.clone(),
            sections: self.sections.clone(),
            passages: self.passages.clone(),
        }
    }
}

impl<A: Automaton> fmt::Debug for System<'_, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("states", &self.states)
            .field("regs", &self.regs)
            .field("sections", &self.sections)
            .field("passages", &self.passages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{Alternator, NoLock};

    #[test]
    fn section_transitions_follow_cycle() {
        assert_eq!(
            Section::Remainder.after(CritKind::Try),
            Some(Section::Trying)
        );
        assert_eq!(
            Section::Trying.after(CritKind::Enter),
            Some(Section::Critical)
        );
        assert_eq!(Section::Critical.after(CritKind::Exit), Some(Section::Exit));
        assert_eq!(Section::Exit.after(CritKind::Rem), Some(Section::Remainder));
        assert_eq!(Section::Remainder.after(CritKind::Enter), None);
        assert_eq!(Section::Critical.after(CritKind::Try), None);
    }

    #[test]
    fn alternator_single_passage() {
        let alg = Alternator::new(3);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        let mut steps = Vec::new();
        while sys.passages(p0) == 0 {
            steps.push(sys.step(p0).step);
        }
        // try, read(turn), enter, exit, write(turn), rem
        assert_eq!(steps.len(), 6);
        assert_eq!(steps[0], Step::crit(p0, CritKind::Try));
        assert_eq!(steps[5], Step::crit(p0, CritKind::Rem));
        assert_eq!(sys.register(RegisterId::new(0)), 1);
    }

    #[test]
    fn busywait_read_does_not_change_state() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p1 = ProcessId::new(1);
        sys.step(p1); // try
        let spin = sys.step(p1); // read turn = 0, but p1 waits for 1
        assert!(!spin.state_changed);
        assert_eq!(spin.read_value, Some(0));
        // SC predicate: reading 1 would change p1's state, reading 0 not.
        assert!(sys.read_changes_state(p1, 1));
        assert!(!sys.read_changes_state(p1, 0));
    }

    #[test]
    fn step_changes_state_previews_without_mutating() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p1 = ProcessId::new(1);
        // try is a real state change.
        assert!(sys.step_changes_state(p1));
        sys.step(p1); // try
                      // p1 now spins on `turn` which holds 0; the pending read is free.
        assert!(!sys.step_changes_state(p1));
        let before = *sys.state(p1);
        let _ = sys.step_changes_state(p1);
        assert_eq!(*sys.state(p1), before, "preview must not mutate");
        // Once p0 hands over the token, the same pending read is charged.
        let p0 = ProcessId::new(0);
        while sys.passages(p0) == 0 {
            sys.step(p0);
        }
        assert!(sys.step_changes_state(p1));
    }

    #[test]
    fn execute_expected_accepts_matching_step() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        let done = sys
            .execute_expected(Step::crit(p0, CritKind::Try))
            .expect("try matches");
        assert!(done.state_changed);
    }

    #[test]
    fn execute_expected_rejects_divergence() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        let err = sys
            .execute_expected(Step::read(p0, RegisterId::new(0)))
            .unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch { .. }));
    }

    #[test]
    fn execute_expected_rejects_unknown_process() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let ghost = ProcessId::new(9);
        let err = sys
            .execute_expected(Step::crit(ghost, CritKind::Try))
            .unwrap_err();
        assert!(matches!(err, ReplayError::InvalidProcess { .. }));
    }

    #[test]
    fn snapshots_roundtrip_and_key_on_full_state() {
        let alg = Alternator::new(3);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        let s0 = sys.snapshot();
        assert_eq!(
            s0,
            System::new(&alg).snapshot(),
            "initial state is canonical"
        );
        // Drive p0 into its critical section and snapshot there.
        sys.step(p0); // try
        sys.step(p0); // read turn = 0
        sys.step(p0); // enter
        let mid = sys.snapshot();
        assert_eq!(mid.in_critical().collect::<Vec<_>>(), vec![p0]);
        assert_eq!(mid.sections()[0], Section::Critical);
        assert_eq!(mid.passages(), &[0, 0, 0]);
        // Restore → re-snapshot is bit-identical, and the restored
        // system continues exactly like the original.
        let mut restored = System::from_snapshot(&alg, &mid);
        assert_eq!(restored.snapshot(), mid);
        let a = sys.step(p0);
        let b = restored.step(p0);
        assert_eq!(a, b);
        assert_eq!(sys.snapshot(), restored.snapshot());
        assert_ne!(sys.snapshot(), mid);
    }

    #[test]
    #[should_panic(expected = "snapshot process count")]
    fn foreign_snapshots_are_rejected() {
        let small = Alternator::new(2);
        let big = Alternator::new(3);
        let snap = System::new(&big).snapshot();
        let _ = System::from_snapshot(&small, &snap);
    }

    #[test]
    fn crash_wipes_state_and_section_but_not_registers_or_passages() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        // Drive p0 through a full passage, leaving turn = 1.
        while sys.passages(p0) == 0 {
            sys.step(p0);
        }
        // p0 starts a second passage and parks inside its CS.
        sys.step(ProcessId::new(1)); // p1: try
        let crashed_reg = sys.register(RegisterId::new(0));
        sys.step(p0); // try — but turn is 1, p0 spins
        let done = sys.crash(p0);
        assert_eq!(done.step, Step::crash(p0));
        assert!(done.state_changed);
        assert_eq!(done.read_value, None);
        // Volatile state and section are wiped…
        assert_eq!(sys.section(p0), Section::Remainder);
        assert_eq!(*sys.state(p0), alg.recover_state(p0));
        // …registers and passage counts persist.
        assert_eq!(sys.register(RegisterId::new(0)), crashed_reg);
        assert_eq!(sys.passages(p0), 1);
    }

    #[test]
    fn crash_in_remainder_with_default_recovery_is_a_noop() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let done = sys.crash(ProcessId::new(1));
        assert!(!done.state_changed);
        assert_eq!(sys.snapshot(), System::new(&alg).snapshot());
    }

    #[test]
    fn execute_expected_accepts_recorded_crashes() {
        let alg = Alternator::new(2);
        let mut sys = System::new(&alg);
        let p0 = ProcessId::new(0);
        sys.step(p0); // try
        let done = sys
            .execute_expected(Step::crash(p0))
            .expect("crash replays");
        assert_eq!(done.step, Step::crash(p0));
        assert_eq!(sys.section(p0), Section::Remainder);
        // An out-of-range crash is still rejected.
        let err = sys.execute_expected(Step::crash(ProcessId::new(9)));
        assert!(matches!(err, Err(ReplayError::InvalidProcess { .. })));
    }

    #[test]
    fn no_lock_lets_two_processes_into_critical() {
        let alg = NoLock::new(2);
        let mut sys = System::new(&alg);
        for p in ProcessId::all(2) {
            sys.step(p); // try
            sys.step(p); // enter
        }
        assert_eq!(sys.in_critical().count(), 2);
    }

    #[test]
    #[should_panic(expected = "performed")]
    fn malformed_critical_step_panics() {
        use crate::automaton::{NextStep, Observation};
        struct Bad;
        impl Automaton for Bad {
            type State = u8;
            fn processes(&self) -> usize {
                1
            }
            fn registers(&self) -> usize {
                0
            }
            fn initial_state(&self, _p: ProcessId) -> u8 {
                0
            }
            fn next_step(&self, _p: ProcessId, _s: &u8) -> NextStep {
                NextStep::Crit(CritKind::Enter) // enter without try
            }
            fn observe(&self, _p: ProcessId, s: &u8, _o: Observation) -> u8 {
                s + 1
            }
        }
        let alg = Bad;
        let mut sys = System::new(&alg);
        sys.step(ProcessId::new(0));
    }
}
