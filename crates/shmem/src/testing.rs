//! Small reference automata used by tests, documentation examples, and
//! failure-injection suites.
//!
//! These are deliberately minimal; the real algorithm library lives in
//! the `exclusion-mutex` crate.

use crate::automaton::{Automaton, NextStep, Observation};
use crate::ids::{ProcessId, RegisterId, Value};
use crate::step::CritKind;

/// The canonical small-`n` fixture grid shared by the cross-crate
/// equivalence and conformance suites (`tests/streaming_equivalence.rs`,
/// `tests/safety_conformance.rs`, `tests/exhaustive_bounds.rs`, …), so
/// every suite exercises the same algorithm × scheduler × seed
/// combinations instead of each maintaining a drifting private copy.
///
/// Algorithms and schedulers are named by their registry spec spellings
/// (this crate sits below the registries, so the grid is strings by
/// design — each suite resolves them against the registry it tests).
pub mod fixtures {
    /// Process counts the exhaustive small-`n` suites certify at.
    pub const SMALL_NS: &[usize] = &[2, 3];

    /// How many entries the standard algorithm registry carries. The
    /// registry lives above this crate, so the suites that iterate it
    /// (`tests/mutex_properties.rs`, `tests/spec_roundtrip.rs`, …) pin
    /// the count here: a new entry must bump this constant, which is
    /// the reminder to extend the grids that enumerate by index.
    pub const STANDARD_ALGORITHMS: usize = 19;

    /// The seed grid shared by every seeded-scheduler sweep.
    pub const SEEDS: &[u64] = &[1, 7, 42];

    /// Passage target the small-`n` grids drive every process to.
    pub const PASSAGES: usize = 2;

    /// Step budget generous enough for every grid combination.
    pub const MAX_STEPS: usize = 50_000_000;

    /// Canonical spec spellings of the scheduling policies the grids
    /// sweep, with arrival parameters scaled to `n` the way the
    /// registry's own defaults scale.
    #[must_use]
    pub fn sched_specs(n: usize) -> Vec<String> {
        vec![
            "sequential".into(),
            "round-robin".into(),
            "random".into(),
            "greedy-adversary".into(),
            "fanlynch".into(),
            format!("burst:wave={},gap={}", n.div_ceil(2), 2 * n),
            format!("stagger:stride={}", 2 * n),
        ]
    }
}

/// Phases of the [`Alternator`] state machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum AltPhase {
    Remainder,
    Waiting,
    Entering,
    Critical,
    Exiting,
    HandOver,
}

/// Per-process state of [`Alternator`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AltState(AltPhase);

// Alternator states pack into one inline word, so the testing fixture
// also exercises `dynamic`'s allocation-free erasure path (`Packed`).
impl crate::dynamic::WordState for AltState {
    const WORDS: usize = 1;

    fn pack(&self, out: &mut [u64]) {
        out[0] = match self.0 {
            AltPhase::Remainder => 0,
            AltPhase::Waiting => 1,
            AltPhase::Entering => 2,
            AltPhase::Critical => 3,
            AltPhase::Exiting => 4,
            AltPhase::HandOver => 5,
        };
    }

    fn unpack(words: &[u64]) -> Self {
        AltState(match words[0] {
            0 => AltPhase::Remainder,
            1 => AltPhase::Waiting,
            2 => AltPhase::Entering,
            3 => AltPhase::Critical,
            4 => AltPhase::Exiting,
            _ => AltPhase::HandOver,
        })
    }
}

/// A token-ring "lock": a single `turn` register cycles through process
/// indices; process `i` busy-waits until `turn == i`, enters, and hands
/// the token to `i + 1 (mod n)`.
///
/// Mutual exclusion always holds. Progress requires every process to keep
/// taking passages (it is *not* livelock-free if a process stops
/// participating), which makes it a convenient fixture: correct under
/// fair full-participation schedules, and a clean example of a busy-wait
/// read that does not change state.
#[derive(Clone, Copy, Debug)]
pub struct Alternator {
    n: usize,
}

impl Alternator {
    /// An `n`-process token ring.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        Alternator { n }
    }

    fn turn() -> RegisterId {
        RegisterId::new(0)
    }
}

impl Automaton for Alternator {
    type State = AltState;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        1
    }

    fn initial_state(&self, _pid: ProcessId) -> AltState {
        AltState(AltPhase::Remainder)
    }

    fn next_step(&self, pid: ProcessId, state: &AltState) -> NextStep {
        match state.0 {
            AltPhase::Remainder => NextStep::Crit(CritKind::Try),
            AltPhase::Waiting => NextStep::Read(Self::turn()),
            AltPhase::Entering => NextStep::Crit(CritKind::Enter),
            AltPhase::Critical => NextStep::Crit(CritKind::Exit),
            AltPhase::Exiting => {
                NextStep::Write(Self::turn(), ((pid.index() + 1) % self.n) as Value)
            }
            AltPhase::HandOver => NextStep::Crit(CritKind::Rem),
        }
    }

    fn observe(&self, pid: ProcessId, state: &AltState, obs: Observation) -> AltState {
        match (state.0, obs) {
            (AltPhase::Remainder, Observation::Crit) => AltState(AltPhase::Waiting),
            (AltPhase::Waiting, Observation::Read(v)) => {
                if v == pid.index() as Value {
                    AltState(AltPhase::Entering)
                } else {
                    *state
                }
            }
            (AltPhase::Entering, Observation::Crit) => AltState(AltPhase::Critical),
            (AltPhase::Critical, Observation::Crit) => AltState(AltPhase::Exiting),
            (AltPhase::Exiting, Observation::Write) => AltState(AltPhase::HandOver),
            (AltPhase::HandOver, Observation::Crit) => AltState(AltPhase::Remainder),
            _ => *state,
        }
    }

    fn register_name(&self, _reg: RegisterId) -> String {
        "turn".to_string()
    }

    fn name(&self) -> String {
        "alternator".to_string()
    }
}

/// A "lock" that performs no synchronization at all: every process goes
/// `try → enter → exit → rem` immediately. Used to verify that the model
/// checker and the execution predicates actually catch violations.
#[derive(Clone, Copy, Debug)]
pub struct NoLock {
    n: usize,
}

impl NoLock {
    /// An `n`-process non-lock.
    #[must_use]
    pub fn new(n: usize) -> Self {
        NoLock { n }
    }
}

/// Per-process state of [`NoLock`]: just a phase counter.
pub type NoLockState = u8;

impl Automaton for NoLock {
    type State = NoLockState;

    fn processes(&self) -> usize {
        self.n
    }

    fn registers(&self) -> usize {
        1
    }

    fn initial_state(&self, _pid: ProcessId) -> u8 {
        0
    }

    fn next_step(&self, _pid: ProcessId, state: &u8) -> NextStep {
        match state {
            0 => NextStep::Crit(CritKind::Try),
            1 => NextStep::Crit(CritKind::Enter),
            2 => NextStep::Crit(CritKind::Exit),
            _ => NextStep::Crit(CritKind::Rem),
        }
    }

    fn observe(&self, _pid: ProcessId, state: &u8, _obs: Observation) -> u8 {
        (state + 1) % 4
    }

    fn name(&self) -> String {
        "no-lock".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_round_robin, run_sequential};

    #[test]
    fn alternator_round_robin_is_safe_and_canonical() {
        let alg = Alternator::new(5);
        let exec = run_round_robin(&alg, 1, 100_000).unwrap();
        assert!(exec.is_canonical(5));
        assert!(exec.mutual_exclusion(5));
    }

    #[test]
    fn alternator_identity_order_runs_sequentially() {
        let alg = Alternator::new(3);
        let order: Vec<_> = ProcessId::all(3).collect();
        let exec = run_sequential(&alg, &order, 1_000).unwrap();
        assert!(exec.is_canonical(3));
    }

    #[test]
    fn no_lock_violates_mutual_exclusion_under_round_robin() {
        let alg = NoLock::new(2);
        let exec = run_round_robin(&alg, 1, 1_000).unwrap();
        assert!(!exec.mutual_exclusion(2));
    }
}
