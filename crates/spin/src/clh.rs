//! The CLH queue lock, with an index-based node pool (no raw pointers).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::wait::Spinner;
use crate::RawLock;

/// A CLH queue lock: threads enqueue by swapping the tail and spin on
/// their *predecessor's* node.
///
/// Each waiter spins on a distinct location written exactly once per
/// handoff — the hardware realization of local spinning, analogous to
/// the simulated tournament's O(1) state changes per encounter.
#[derive(Debug)]
pub struct ClhLock {
    /// `true` while the owning thread holds or waits for the lock.
    nodes: Vec<AtomicBool>,
    /// Index of the most recently enqueued node.
    tail: AtomicUsize,
    /// The node each thread currently owns (nodes recycle between
    /// threads, as in the classic pointer-based CLH).
    my_node: Vec<AtomicUsize>,
    /// The predecessor node observed at enqueue time.
    my_pred: Vec<AtomicUsize>,
}

impl ClhLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        // One node per thread plus the initially-released sentinel.
        let nodes = (0..=threads).map(|_| AtomicBool::new(false)).collect();
        ClhLock {
            nodes,
            tail: AtomicUsize::new(threads),
            my_node: (0..threads).map(AtomicUsize::new).collect(),
            my_pred: (0..threads).map(|_| AtomicUsize::new(usize::MAX)).collect(),
        }
    }
}

impl RawLock for ClhLock {
    fn lock(&self, tid: usize) {
        let node = self.my_node[tid].load(Ordering::Relaxed);
        self.nodes[node].store(true, Ordering::Relaxed);
        let pred = self.tail.swap(node, Ordering::AcqRel);
        self.my_pred[tid].store(pred, Ordering::Relaxed);
        let mut spin = Spinner::new();
        while self.nodes[pred].load(Ordering::Acquire) {
            spin.wait();
        }
    }

    fn unlock(&self, tid: usize) {
        let node = self.my_node[tid].load(Ordering::Relaxed);
        let pred = self.my_pred[tid].load(Ordering::Relaxed);
        self.nodes[node].store(false, Ordering::Release);
        // Recycle the predecessor's node for our next acquisition.
        self.my_node[tid].store(pred, Ordering::Relaxed);
    }

    fn threads(&self) -> usize {
        self.my_node.len()
    }

    fn name(&self) -> &'static str {
        "clh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn clh_excludes() {
        let lock = ClhLock::new(4);
        let r = torture(&lock, 4, 2_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 8_000);
    }

    #[test]
    fn nodes_recycle_across_passages() {
        let lock = ClhLock::new(2);
        for _ in 0..100 {
            lock.lock(0);
            lock.unlock(0);
            lock.lock(1);
            lock.unlock(1);
        }
    }
}
