//! The hardware twin of the simulated `DekkerTournament`: a
//! register-only tournament whose busy-waits each read a single
//! location.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::tree::{hop, levels, nodes};
use crate::wait::Spinner;
use crate::RawLock;

/// A Dekker-element tournament lock on `SeqCst` atomics.
///
/// Identical protocol to the simulated
/// [`DekkerTournament`](../exclusion_mutex/struct.DekkerTournament.html)
/// whose safety is exhaustively model-checked in `exclusion-mutex`; the
/// hardware version inherits the design: the tie-break loser lowers its
/// flag and spins on `turn` alone, the holder spins on the rival's flag
/// alone, so each wait touches one cache line.
#[derive(Debug)]
pub struct DekkerTreeLock {
    /// Per node: `flag0, flag1, turn`, flattened.
    regs: Vec<AtomicUsize>,
    threads: usize,
}

const FLAG0: usize = 0;
const FLAG1: usize = 1;
const TURN: usize = 2;

impl DekkerTreeLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let regs = (0..nodes(threads).max(1) * 3)
            .map(|_| AtomicUsize::new(0))
            .collect();
        DekkerTreeLock { regs, threads }
    }

    fn reg(&self, node: usize, which: usize) -> &AtomicUsize {
        &self.regs[(node - 1) * 3 + which]
    }

    fn flag(&self, node: usize, side: u8) -> &AtomicUsize {
        self.reg(node, if side == 0 { FLAG0 } else { FLAG1 })
    }

    fn enter_node(&self, node: usize, side: u8) {
        let me = side as usize;
        self.flag(node, side).store(1, Ordering::SeqCst);
        if self.flag(node, 1 - side).load(Ordering::SeqCst) == 0 {
            return; // rival absent
        }
        if self.reg(node, TURN).load(Ordering::SeqCst) != me {
            // Lost the tie-break: back off and wait for the handoff
            // (single-location spin on `turn`).
            self.flag(node, side).store(0, Ordering::SeqCst);
            let mut spin = Spinner::new();
            while self.reg(node, TURN).load(Ordering::SeqCst) != me {
                spin.wait();
            }
            self.flag(node, side).store(1, Ordering::SeqCst);
        }
        // Hold the tie-break: wait for the rival to back off or leave
        // (single-location spin on its flag).
        let mut spin = Spinner::new();
        while self.flag(node, 1 - side).load(Ordering::SeqCst) == 1 {
            spin.wait();
        }
    }

    fn exit_node(&self, node: usize, side: u8) {
        self.reg(node, TURN)
            .store(1 - side as usize, Ordering::SeqCst);
        self.flag(node, side).store(0, Ordering::SeqCst);
    }
}

impl RawLock for DekkerTreeLock {
    fn lock(&self, tid: usize) {
        for level in 0..levels(self.threads) {
            let (node, side) = hop(self.threads, tid, level);
            self.enter_node(node, side);
        }
    }

    fn unlock(&self, tid: usize) {
        for level in (0..levels(self.threads)).rev() {
            let (node, side) = hop(self.threads, tid, level);
            self.exit_node(node, side);
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "dekker-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn dekker_tree_excludes() {
        for threads in [2, 3, 4] {
            let lock = DekkerTreeLock::new(threads);
            let r = torture(&lock, threads, 2_000);
            assert_eq!(r.violations, 0, "threads = {threads}");
            assert_eq!(r.counter, (threads * 2_000) as u64);
        }
    }

    #[test]
    fn long_two_thread_duel() {
        let lock = DekkerTreeLock::new(2);
        let r = torture(&lock, 2, 20_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 40_000);
    }
}
