//! A contention torture harness for [`RawLock`] implementations.
//!
//! Two independent violation detectors run inside the critical section:
//!
//! * an occupancy counter incremented on entry and decremented on exit —
//!   any observation of occupancy ≥ 2 is a violation;
//! * a deliberately non-atomic read-modify-write of a shared counter
//!   (load, then store of the incremented value): if mutual exclusion
//!   ever fails, increments are lost and the final count falls short of
//!   `threads × iterations`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::RawLock;

/// The outcome of a torture run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TortureReport {
    /// Times a thread observed another thread inside the critical
    /// section.
    pub violations: usize,
    /// Final value of the lock-protected counter; equals
    /// `threads × iterations` iff no increment was lost.
    pub counter: u64,
}

/// Runs `threads` threads, each locking/incrementing/unlocking
/// `iterations` times, and reports violations.
///
/// # Panics
///
/// Panics if `threads` exceeds the lock's capacity.
pub fn torture<L: RawLock + ?Sized>(lock: &L, threads: usize, iterations: usize) -> TortureReport {
    assert!(
        threads <= lock.threads(),
        "lock sized for {} threads, {} requested",
        lock.threads(),
        threads
    );
    let occupancy = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    let counter = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (occupancy, violations, counter) = (&occupancy, &violations, &counter);
            scope.spawn(move || {
                for _ in 0..iterations {
                    lock.lock(tid);
                    if occupancy.fetch_add(1, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    // Non-atomic increment: load, then store. Lost
                    // updates reveal exclusion failures.
                    let c = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(c + 1, Ordering::Relaxed);
                    occupancy.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock(tid);
                }
            });
        }
    });
    TortureReport {
        violations: violations.load(Ordering::SeqCst),
        counter: counter.load(Ordering::SeqCst),
    }
}

/// Every lock in the crate, instantiated for `threads` threads, in a
/// stable report order.
#[must_use]
pub fn all_locks(threads: usize) -> Vec<Box<dyn RawLock>> {
    vec![
        Box::new(crate::TasLock::new(threads)),
        Box::new(crate::TtasLock::new(threads)),
        Box::new(crate::TicketLock::new(threads)),
        Box::new(crate::ClhLock::new(threads)),
        Box::new(crate::McsLock::new(threads)),
        Box::new(crate::PetersonTreeLock::new(threads)),
        Box::new(crate::DekkerTreeLock::new(threads)),
    ]
}

/// A broken "lock" that does nothing — validates that the harness
/// actually detects violations.
#[derive(Debug)]
pub struct NoOpLock {
    threads: usize,
}

impl NoOpLock {
    /// A non-lock for `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        NoOpLock { threads }
    }
}

impl RawLock for NoOpLock {
    fn lock(&self, _tid: usize) {}
    fn unlock(&self, _tid: usize) {}
    fn threads(&self) -> usize {
        self.threads
    }
    fn name(&self) -> &'static str {
        "no-op"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_lock_is_caught() {
        // With real parallelism the no-op lock must lose updates or
        // trip the occupancy detector; retry a few times to make the
        // race overwhelmingly likely even on loaded CI machines.
        let lock = NoOpLock::new(4);
        let mut caught = false;
        for _ in 0..50 {
            let r = torture(&lock, 4, 20_000);
            if r.violations > 0 || r.counter < 80_000 {
                caught = true;
                break;
            }
        }
        assert!(caught, "harness failed to detect a no-op lock");
    }

    #[test]
    fn all_locks_lists_seven() {
        let locks = all_locks(2);
        assert_eq!(locks.len(), 7);
        let names: Vec<_> = locks.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            [
                "tas",
                "ttas",
                "ticket",
                "clh",
                "mcs",
                "peterson-tree",
                "dekker-tree"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn oversubscription_panics() {
        let lock = crate::TicketLock::new(2);
        let _ = torture(&lock, 3, 1);
    }
}
