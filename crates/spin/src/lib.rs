//! Real-hardware locks on `std::sync::atomic`, mirroring the simulated
//! algorithm family of `exclusion-mutex`.
//!
//! The calibration notes for this reproduction call for actual atomics:
//! the paper's cost models (SC/CC/DSM) abstract the remote-memory
//! traffic of real multiprocessors, and this crate provides the concrete
//! counterpart measured by `exclusion-bench`'s hardware benchmarks
//! (experiment E9). The family spans the classic contention spectrum:
//!
//! | Lock | Remote traffic under contention |
//! |---|---|
//! | [`TasLock`] | every spin iteration hits the line (RMW storm) |
//! | [`TtasLock`] | spins in cache; storms on release |
//! | [`TicketLock`] | one RMW to enqueue; spins on a shared counter |
//! | [`ClhLock`] | queue lock; spins on the predecessor's node |
//! | [`McsLock`] | queue lock; spins on the thread's own node |
//! | [`PetersonTreeLock`] | register-only tournament (remote spins) |
//! | [`DekkerTreeLock`] | register-only tournament (single-register spins), the hardware twin of the simulated `DekkerTournament` |
//!
//! All locks implement [`RawLock`], identify threads by index (the
//! register-based ones need it), and are validated by the [`harness`]
//! torture test. The crate is `forbid(unsafe_code)`: the queue locks use
//! index-based node pools instead of raw pointers.
//!
//! # Example
//!
//! ```
//! use exclusion_spin::{harness::torture, RawLock, TicketLock};
//!
//! let lock = TicketLock::new(4);
//! let report = torture(&lock, 4, 1_000);
//! assert_eq!(report.violations, 0);
//! assert_eq!(report.counter, 4 * 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod paced;

mod clh;
mod dekker;
mod mcs;
mod peterson;
mod tas;
mod ticket;
mod tree;
mod wait;

pub use clh::ClhLock;
pub use dekker::DekkerTreeLock;
pub use mcs::McsLock;
pub use peterson::PetersonTreeLock;
pub use tas::{TasLock, TtasLock};
pub use ticket::TicketLock;

/// A mutual exclusion lock identifying threads by a dense index in
/// `0..threads`.
///
/// Register-based algorithms need stable identities (their shared
/// variables are indexed by competitor), so the API passes the thread
/// index explicitly rather than using TLS.
pub trait RawLock: Send + Sync {
    /// Acquires the lock for thread `tid`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `tid` is out of range or the thread
    /// already holds the lock.
    fn lock(&self, tid: usize);

    /// Releases the lock held by thread `tid`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `tid` does not hold the lock.
    fn unlock(&self, tid: usize);

    /// The maximum number of threads this instance supports.
    fn threads(&self) -> usize;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use crate::harness::{all_locks, torture};

    #[test]
    fn all_locks_pass_a_smoke_torture() {
        for lock in all_locks(3) {
            let report = torture(lock.as_ref(), 3, 1_000);
            assert_eq!(report.violations, 0, "{}", lock.name());
            assert_eq!(report.counter, 3_000, "{}", lock.name());
        }
    }

    #[test]
    fn single_thread_fast_path() {
        for lock in all_locks(1) {
            lock.lock(0);
            lock.unlock(0);
            lock.lock(0);
            lock.unlock(0);
        }
    }

    #[test]
    fn locks_report_thread_capacity() {
        for lock in all_locks(6) {
            assert_eq!(lock.threads(), 6, "{}", lock.name());
        }
    }
}
