//! The MCS queue lock, with an index-based node pool (no raw pointers).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::wait::Spinner;
use crate::RawLock;

const NONE: usize = usize::MAX;

/// An MCS queue lock: threads enqueue by swapping the tail, link
/// themselves behind their predecessor, and spin on their *own* node.
///
/// The canonical local-spin lock of Mellor-Crummey & Scott (one of the
/// works the paper's related-work section credits for local-spin
/// algorithms): O(1) remote references per acquisition in both the CC
/// and DSM models.
#[derive(Debug)]
pub struct McsLock {
    locked: Vec<AtomicBool>,
    next: Vec<AtomicUsize>,
    tail: AtomicUsize,
}

impl McsLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        McsLock {
            locked: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            next: (0..threads).map(|_| AtomicUsize::new(NONE)).collect(),
            tail: AtomicUsize::new(NONE),
        }
    }
}

impl RawLock for McsLock {
    fn lock(&self, tid: usize) {
        self.next[tid].store(NONE, Ordering::Relaxed);
        self.locked[tid].store(true, Ordering::Relaxed);
        let pred = self.tail.swap(tid, Ordering::AcqRel);
        if pred != NONE {
            self.next[pred].store(tid, Ordering::Release);
            let mut spin = Spinner::new();
            while self.locked[tid].load(Ordering::Acquire) {
                spin.wait();
            }
        }
    }

    fn unlock(&self, tid: usize) {
        if self.next[tid].load(Ordering::Acquire) == NONE {
            // No known successor: try to swing the tail back to empty.
            if self
                .tail
                .compare_exchange(tid, NONE, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // A successor is enqueueing; wait for it to link itself.
            let mut spin = Spinner::new();
            while self.next[tid].load(Ordering::Acquire) == NONE {
                spin.wait();
            }
        }
        let succ = self.next[tid].load(Ordering::Acquire);
        self.locked[succ].store(false, Ordering::Release);
    }

    fn threads(&self) -> usize {
        self.locked.len()
    }

    fn name(&self) -> &'static str {
        "mcs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn mcs_excludes() {
        let lock = McsLock::new(4);
        let r = torture(&lock, 4, 2_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 8_000);
    }

    #[test]
    fn uncontended_fast_path_uses_cas_out() {
        let lock = McsLock::new(1);
        for _ in 0..1000 {
            lock.lock(0);
            lock.unlock(0);
        }
    }
}
