//! A paced differential runner: replays an `ArrivalModel`-style
//! schedule of lock requests (see `exclusion-serve`'s arrival
//! registry) against a real [`RawLock`] and records the global
//! acquisition order plus wall-clock timings.
//!
//! This is the hardware leg of the formal-vs-hardware harness
//! (`exclusion-workload`'s `hwbench`): the simulated leg admits
//! processes into an automaton at given arrival ticks and records the
//! critical-section entry order under the priced cost models; this
//! runner admits *threads* into a real atomics-based lock at the same
//! arrival ticks (scaled to nanoseconds) and records the entry order
//! the silicon actually produced. The two legs then compare acquisition
//! multisets and passage counts, and co-report simulated RMR cost
//! against measured nanoseconds.
//!
//! Arrivals are paced off one shared monotonic clock: each thread
//! spin-waits until its next request's arrival time before calling
//! `lock`, so inter-arrival structure (steady trickles, bursts) is
//! preserved on hardware rather than collapsing into a free-for-all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::RawLock;

/// One completed passage of the paced run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Acquisition {
    /// Thread that completed the passage.
    pub tid: usize,
    /// Position in the global acquisition order (0-based).
    pub seq: usize,
    /// Nanoseconds from the request's scheduled arrival to lock entry.
    pub wait_ns: u64,
}

/// The outcome of a [`paced_run`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PacedReport {
    /// Lock name, as reported by the lock itself.
    pub lock: String,
    /// All passages in global acquisition order.
    pub acquisitions: Vec<Acquisition>,
    /// Total wall-clock of the run in nanoseconds.
    pub elapsed_ns: u64,
}

impl PacedReport {
    /// Passages completed by thread `tid`.
    #[must_use]
    pub fn passages(&self, tid: usize) -> usize {
        self.acquisitions.iter().filter(|a| a.tid == tid).count()
    }

    /// The acquisition order as a sequence of thread ids.
    #[must_use]
    pub fn order(&self) -> Vec<usize> {
        self.acquisitions.iter().map(|a| a.tid).collect()
    }
}

/// Replays per-thread arrival schedules against `lock` and records the
/// global acquisition order.
///
/// `arrivals[tid]` is the non-decreasing list of arrival *ticks* for
/// thread `tid`'s requests; each tick is scaled by `ns_per_tick` to a
/// deadline on the shared clock. A thread spin-waits until each
/// request's deadline, acquires the lock, claims the next slot in the
/// global order with one `fetch_add`, briefly holds the lock, and
/// releases it.
///
/// # Panics
///
/// Panics if `arrivals` has more lanes than the lock supports.
pub fn paced_run<L: RawLock + ?Sized>(
    lock: &L,
    arrivals: &[Vec<u64>],
    ns_per_tick: u64,
) -> PacedReport {
    assert!(
        arrivals.len() <= lock.threads(),
        "lock sized for {} threads, {} arrival lanes",
        lock.threads(),
        arrivals.len()
    );
    let total: usize = arrivals.iter().map(Vec::len).sum();
    let next_seq = AtomicUsize::new(0);
    // One slot per passage, claimed by fetch_add inside the critical
    // section: slot k holds (tid, wait_ns) of the k-th acquisition.
    let slots: Vec<(AtomicUsize, AtomicUsize)> = (0..total)
        .map(|_| (AtomicUsize::new(usize::MAX), AtomicUsize::new(0)))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (tid, lane) in arrivals.iter().enumerate() {
            let (next_seq, slots, start) = (&next_seq, &slots, &start);
            scope.spawn(move || {
                for &tick in lane {
                    let due = tick.saturating_mul(ns_per_tick);
                    // Pace: wait out the arrival schedule.
                    while (start.elapsed().as_nanos() as u64) < due {
                        std::hint::spin_loop();
                    }
                    lock.lock(tid);
                    let entered = start.elapsed().as_nanos() as u64;
                    let seq = next_seq.fetch_add(1, Ordering::SeqCst);
                    slots[seq].0.store(tid, Ordering::SeqCst);
                    slots[seq]
                        .1
                        .store(entered.saturating_sub(due) as usize, Ordering::SeqCst);
                    lock.unlock(tid);
                }
            });
        }
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let acquisitions = slots
        .iter()
        .enumerate()
        .map(|(seq, (tid, wait))| Acquisition {
            tid: tid.load(Ordering::SeqCst),
            seq,
            wait_ns: wait.load(Ordering::SeqCst) as u64,
        })
        .collect();
    PacedReport {
        lock: lock.name().to_string(),
        acquisitions,
        elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::all_locks;

    #[test]
    fn every_lock_completes_a_paced_run() {
        for lock in all_locks(3) {
            let arrivals = vec![vec![0, 10, 20], vec![1, 11, 21], vec![2, 12, 22]];
            let report = paced_run(lock.as_ref(), &arrivals, 100);
            assert_eq!(report.acquisitions.len(), 9, "{}", lock.name());
            for tid in 0..3 {
                assert_eq!(report.passages(tid), 3, "{} tid {tid}", lock.name());
            }
            // Every slot was claimed exactly once.
            let mut seqs: Vec<_> = report.acquisitions.iter().map(|a| a.seq).collect();
            seqs.sort_unstable();
            assert_eq!(seqs, (0..9).collect::<Vec<_>>(), "{}", lock.name());
        }
    }

    #[test]
    fn widely_spaced_arrivals_acquire_in_arrival_order() {
        // With arrivals far apart relative to passage length, the
        // acquisition order must equal the arrival order. OS scheduling
        // can still delay a thread past its slot on a loaded machine,
        // so retry with widening ticks before declaring failure.
        let arrivals = vec![vec![0, 2], vec![1, 3]];
        for ns_per_tick in [3_000_000, 10_000_000, 30_000_000] {
            let lock = crate::TicketLock::new(2);
            let report = paced_run(&lock, &arrivals, ns_per_tick);
            if report.order() == [0, 1, 0, 1] {
                return;
            }
        }
        panic!("arrival order not preserved even at 30ms ticks");
    }

    #[test]
    fn empty_lanes_are_fine() {
        let lock = crate::McsLock::new(2);
        let report = paced_run(&lock, &[vec![0, 1, 2], vec![]], 10);
        assert_eq!(report.order(), [0, 0, 0]);
        assert_eq!(report.passages(1), 0);
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn oversubscription_panics() {
        let lock = crate::TicketLock::new(1);
        let _ = paced_run(&lock, &[vec![0], vec![0]], 1);
    }
}
