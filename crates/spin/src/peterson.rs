//! A register-only Peterson tournament lock on real atomics.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::tree::{hop, levels, nodes};
use crate::wait::Spinner;
use crate::RawLock;

/// Peterson's two-process algorithm at every node of an arbitration
/// tree, on `SeqCst` atomics (Peterson requires sequential consistency).
///
/// Uses only reads and writes — no read-modify-write instructions — so
/// it is the hardware counterpart of the paper's register-only model.
/// The waiting loop reads two locations alternately; under contention
/// this generates coherence traffic on both, which is what experiment E9
/// measures against the queue locks.
#[derive(Debug)]
pub struct PetersonTreeLock {
    /// Per node: `flag0, flag1, turn`, flattened.
    regs: Vec<AtomicUsize>,
    threads: usize,
}

const FLAG0: usize = 0;
const FLAG1: usize = 1;
const TURN: usize = 2;

impl PetersonTreeLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let regs = (0..nodes(threads).max(1) * 3)
            .map(|_| AtomicUsize::new(0))
            .collect();
        PetersonTreeLock { regs, threads }
    }

    fn reg(&self, node: usize, which: usize) -> &AtomicUsize {
        &self.regs[(node - 1) * 3 + which]
    }

    fn flag(&self, node: usize, side: u8) -> &AtomicUsize {
        self.reg(node, if side == 0 { FLAG0 } else { FLAG1 })
    }
}

impl RawLock for PetersonTreeLock {
    fn lock(&self, tid: usize) {
        for level in 0..levels(self.threads) {
            let (node, side) = hop(self.threads, tid, level);
            self.flag(node, side).store(1, Ordering::SeqCst);
            self.reg(node, TURN).store(side as usize, Ordering::SeqCst);
            let mut spin = Spinner::new();
            while self.flag(node, 1 - side).load(Ordering::SeqCst) == 1
                && self.reg(node, TURN).load(Ordering::SeqCst) == side as usize
            {
                spin.wait();
            }
        }
    }

    fn unlock(&self, tid: usize) {
        for level in (0..levels(self.threads)).rev() {
            let (node, side) = hop(self.threads, tid, level);
            self.flag(node, side).store(0, Ordering::SeqCst);
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "peterson-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn peterson_tree_excludes() {
        for threads in [2, 3, 4] {
            let lock = PetersonTreeLock::new(threads);
            let r = torture(&lock, threads, 2_000);
            assert_eq!(r.violations, 0, "threads = {threads}");
            assert_eq!(r.counter, (threads * 2_000) as u64);
        }
    }

    #[test]
    fn single_thread_skips_the_tree() {
        let lock = PetersonTreeLock::new(1);
        lock.lock(0);
        lock.unlock(0);
    }
}
