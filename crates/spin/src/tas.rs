//! Test-and-set and test-and-test-and-set spin locks.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::wait::Spinner;
use crate::RawLock;

/// The plain test-and-set lock: spin on `swap(true)`.
///
/// Every spin iteration is a read-modify-write that claims the cache
/// line exclusively, so contention produces maximal coherence traffic —
/// the hardware analogue of an algorithm that busy-waits with writes.
#[derive(Debug)]
pub struct TasLock {
    flag: AtomicBool,
    threads: usize,
}

impl TasLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TasLock {
            flag: AtomicBool::new(false),
            threads,
        }
    }
}

impl RawLock for TasLock {
    fn lock(&self, _tid: usize) {
        let mut spin = Spinner::new();
        while self.flag.swap(true, Ordering::Acquire) {
            spin.wait();
        }
    }

    fn unlock(&self, _tid: usize) {
        self.flag.store(false, Ordering::Release);
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "tas"
    }
}

/// The test-and-test-and-set lock: spin reading until the flag looks
/// free, then attempt the swap.
///
/// The read-only spin stays in the local cache until the holder's
/// release invalidates it — the hardware counterpart of the CC model's
/// free cached re-reads.
#[derive(Debug)]
pub struct TtasLock {
    flag: AtomicBool,
    threads: usize,
}

impl TtasLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TtasLock {
            flag: AtomicBool::new(false),
            threads,
        }
    }
}

impl RawLock for TtasLock {
    fn lock(&self, _tid: usize) {
        let mut spin = Spinner::new();
        loop {
            while self.flag.load(Ordering::Relaxed) {
                spin.wait();
            }
            if !self.flag.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    fn unlock(&self, _tid: usize) {
        self.flag.store(false, Ordering::Release);
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "ttas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn tas_excludes() {
        let lock = TasLock::new(4);
        let r = torture(&lock, 4, 2_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 8_000);
    }

    #[test]
    fn ttas_excludes() {
        let lock = TtasLock::new(4);
        let r = torture(&lock, 4, 2_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 8_000);
    }
}
