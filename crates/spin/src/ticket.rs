//! The ticket lock: FIFO handoff via two counters.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::wait::Spinner;
use crate::RawLock;

/// A ticket lock: `fetch_add` draws a ticket, the holder bumps
/// `now_serving` on release.
///
/// One RMW per acquisition; all waiters spin on the same `now_serving`
/// line (each release invalidates every waiter — Θ(waiters) coherence
/// traffic per handoff, the behaviour queue locks avoid).
#[derive(Debug)]
pub struct TicketLock {
    next: AtomicUsize,
    serving: AtomicUsize,
    threads: usize,
}

impl TicketLock {
    /// A lock for up to `threads` threads.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TicketLock {
            next: AtomicUsize::new(0),
            serving: AtomicUsize::new(0),
            threads,
        }
    }
}

impl RawLock for TicketLock {
    fn lock(&self, _tid: usize) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spin = Spinner::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            spin.wait();
        }
    }

    fn unlock(&self, _tid: usize) {
        let t = self.serving.load(Ordering::Relaxed);
        self.serving.store(t + 1, Ordering::Release);
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "ticket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::torture;

    #[test]
    fn ticket_excludes() {
        let lock = TicketLock::new(4);
        let r = torture(&lock, 4, 2_000);
        assert_eq!(r.violations, 0);
        assert_eq!(r.counter, 8_000);
    }

    #[test]
    fn tickets_are_fifo_under_sequential_use() {
        let lock = TicketLock::new(2);
        lock.lock(0);
        lock.unlock(0);
        lock.lock(1);
        lock.unlock(1);
    }
}
