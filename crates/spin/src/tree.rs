//! Arbitration-tree geometry for the register-only tournament locks —
//! the hardware twin of `exclusion_mutex::tree`.

/// Number of levels for `n` threads (smallest complete tree).
pub(crate) fn levels(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Number of internal nodes.
pub(crate) fn nodes(n: usize) -> usize {
    (1usize << levels(n)) - 1
}

/// The `(node, side)` hop of thread `tid` at climb level `level`
/// (level 0 is just above the leaves; nodes are heap-indexed from 1).
pub(crate) fn hop(n: usize, tid: usize, level: usize) -> (usize, u8) {
    let slot = (1usize << levels(n)) + tid;
    let shifted = slot >> level;
    (shifted >> 1, (shifted & 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_simulated_tree_geometry() {
        for n in 1..=17 {
            let sim = exclusion_mutex_tree_reference(n);
            assert_eq!(levels(n), sim.0, "levels for n = {n}");
            assert_eq!(nodes(n), sim.1, "nodes for n = {n}");
        }
    }

    // Reference values recomputed independently (the simulated crate is
    // not a dependency of this one).
    fn exclusion_mutex_tree_reference(n: usize) -> (usize, usize) {
        let mut l = 0;
        while (1usize << l) < n {
            l += 1;
        }
        (l, (1usize << l) - 1)
    }

    #[test]
    fn siblings_oppose() {
        let (na, sa) = hop(4, 0, 0);
        let (nb, sb) = hop(4, 1, 0);
        assert_eq!(na, nb);
        assert_ne!(sa, sb);
        assert_eq!(hop(4, 0, 1).0, 1);
        assert_eq!(hop(4, 3, 1).0, 1);
    }
}
