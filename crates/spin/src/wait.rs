//! Spin-wait helper: bounded busy-spinning, then yielding.
//!
//! On machines with fewer cores than threads a pure busy-wait burns its
//! whole scheduling quantum while the lock holder is descheduled; after
//! a short burst of `spin_loop` hints we yield to the OS so handoffs
//! stay cheap even oversubscribed. This is the standard
//! spin-then-yield hybrid and does not change any lock's logic.

/// Per-wait-loop backoff state.
#[derive(Debug, Default)]
pub(crate) struct Spinner {
    count: u32,
}

impl Spinner {
    /// A fresh backoff for one wait loop.
    pub(crate) fn new() -> Self {
        Spinner::default()
    }

    /// One wait iteration: spin briefly, then start yielding.
    pub(crate) fn wait(&mut self) {
        if self.count < 64 {
            self.count += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spinner_escalates_without_panicking() {
        let mut s = Spinner::new();
        for _ in 0..200 {
            s.wait();
        }
    }
}
