//! Chrome trace-event JSON export, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Timestamps are **logical**: the `ts` of each trace event is its
//! position in the collected stream, not a wall-clock reading, so two
//! exports of the same deterministic run are byte-identical — the
//! property the CLI's `workload trace` acceptance check replays. Span
//! wall-clock (`SpanEnd::wall_ns`) is never emitted.
//!
//! Lane layout: everything shares `pid` 0; per-process events
//! (steps, charges, adversary moves) run on `tid` = the process index,
//! while engine-level events (layers, pumps, spans) run on the
//! [`ENGINE_LANE`] thread.

use std::fmt::Write as _;

use exclusion_shmem::ids::ProcessId;
use exclusion_shmem::probe::TraceEvent;
use exclusion_shmem::step::StepType;

/// Schema tag stamped into the export's `otherData`.
pub const CHROME_SCHEMA: &str = "exclusion-trace/v1";

/// The `tid` engine-level events (layers, pumps, spans) are placed on.
pub const ENGINE_LANE: usize = 1000;

fn step_name(ty: StepType) -> &'static str {
    match ty {
        StepType::Read => "read",
        StepType::Write => "write",
        StepType::Rmw => "rmw",
        StepType::Crit => "crit",
        StepType::Crash => "crash",
    }
}

fn lane(pid: ProcessId) -> usize {
    pid.index()
}

/// Serializes a collected event stream as one Chrome trace-event JSON
/// document. Pure function of the stream: logical timestamps, no
/// wall-clock, no ambient state.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (ts, ev) in events.iter().enumerate() {
        if ts > 0 {
            out.push(',');
        }
        match *ev {
            TraceEvent::Executed {
                index,
                pid,
                ty,
                reg,
                state_changed,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"step\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":1,\"pid\":0,\"tid\":{},\"args\":{{\"step\":{index},\
                     \"reg\":{},\"state_changed\":{state_changed}}}}}",
                    step_name(ty),
                    lane(pid),
                    reg.map_or(-1, |r| r.index() as i64),
                );
            }
            TraceEvent::Charged {
                index,
                pid,
                reg,
                sc,
                cc,
                dsm,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"cost-charge\",\"cat\":\"cost\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"step\":{index},\
                     \"reg\":{},\"sc\":{sc},\"cc\":{cc},\"dsm\":{dsm}}}}}",
                    lane(pid),
                    reg.index(),
                );
            }
            TraceEvent::Merge {
                index,
                reader,
                writer,
                merged,
                groups,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"awareness-merge\",\"cat\":\"adversary\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\
                     \"pick\":{index},\"writer\":{},\"merged\":{merged},\
                     \"groups\":{groups}}}}}",
                    lane(reader),
                    writer.index(),
                );
            }
            TraceEvent::Harvest {
                index,
                reader,
                reg,
                writer,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"harvest\",\"cat\":\"adversary\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"pick\":{index},\
                     \"reg\":{},\"writer\":{}}}}}",
                    lane(reader),
                    reg.index(),
                    writer.map_or(-1, |w| w.index() as i64),
                );
            }
            TraceEvent::Reveal {
                index,
                writer,
                reg,
                audience,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"reveal\",\"cat\":\"adversary\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"pick\":{index},\
                     \"reg\":{},\"audience\":{audience}}}}}",
                    lane(writer),
                    reg.index(),
                );
            }
            TraceEvent::Layer {
                depth,
                expanded,
                fresh,
                dedup,
                states,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"frontier\",\"cat\":\"explorer\",\"ph\":\"C\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{ENGINE_LANE},\"args\":{{\"depth\":{depth},\
                     \"expanded\":{expanded},\"fresh\":{fresh},\"dedup\":{dedup},\
                     \"states\":{states}}}}}"
                );
            }
            TraceEvent::Pump { depth, scc } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"scc-pump\",\"cat\":\"explorer\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{ENGINE_LANE},\"args\":{{\
                     \"depth\":{depth},\"scc\":{scc}}}}}"
                );
            }
            TraceEvent::Crash { index, pid } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"step\":{index}}}}}",
                    lane(pid),
                );
            }
            TraceEvent::Recover { index, pid } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"recover\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"step\":{index}}}}}",
                    lane(pid),
                );
            }
            TraceEvent::SpanStart { scope, tag } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{ENGINE_LANE},\"args\":{{\"tag\":{tag}}}}}",
                    scope.name(),
                );
            }
            TraceEvent::SpanEnd { scope, tag, .. } => {
                // wall_ns deliberately dropped: the export stays a pure
                // function of the deterministic stream.
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{ENGINE_LANE},\"args\":{{\"tag\":{tag}}}}}",
                    scope.name(),
                );
            }
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"{CHROME_SCHEMA}\"}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exclusion_shmem::ids::RegisterId;
    use exclusion_shmem::probe::SpanScope;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SpanStart {
                scope: SpanScope::Game,
                tag: 0,
            },
            TraceEvent::Executed {
                index: 0,
                pid: ProcessId::new(2),
                ty: StepType::Read,
                reg: Some(RegisterId::new(1)),
                state_changed: true,
            },
            TraceEvent::Charged {
                index: 0,
                pid: ProcessId::new(2),
                reg: RegisterId::new(1),
                sc: 1,
                cc: 1,
                dsm: 0,
            },
            TraceEvent::Merge {
                index: 0,
                reader: ProcessId::new(2),
                writer: ProcessId::new(0),
                merged: 2,
                groups: 3,
            },
            TraceEvent::SpanEnd {
                scope: SpanScope::Game,
                tag: 0,
                wall_ns: 5_000,
            },
        ]
    }

    #[test]
    fn export_is_balanced_and_names_the_key_events() {
        let json = chrome_trace(&sample());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for name in ["cost-charge", "awareness-merge", "\"read\"", "\"game\""] {
            assert!(json.contains(name), "missing {name}");
        }
        assert!(json.contains(CHROME_SCHEMA));
    }

    #[test]
    fn export_has_logical_timestamps_and_no_wall_clock() {
        let json = chrome_trace(&sample());
        for ts in 0..5 {
            assert!(json.contains(&format!("\"ts\":{ts},")), "ts {ts}");
        }
        assert!(!json.contains("5000"));
        assert!(!json.contains("wall"));
        // Byte-identical across exports of equal streams.
        assert_eq!(json, chrome_trace(&sample()));
    }
}
