//! Probes that store or fan out the event stream.

use exclusion_shmem::probe::{Probe, TraceEvent};

/// A probe that stores the event stream verbatim.
///
/// Events are `Copy`, so collecting is a vector push per event — this
/// is the probe-on configuration `bench_trace` holds to ≤ 1.5× of the
/// unprobed hot path. The collected stream is the input to
/// [`chrome_trace`](crate::chrome_trace) and the object of the
/// equivalence tests: two runs of the same deterministic engine collect
/// equal streams (event equality ignores span wall-clock).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct CollectingProbe {
    events: Vec<TraceEvent>,
}

impl CollectingProbe {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        CollectingProbe::default()
    }

    /// The events collected so far, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the collector, returning the event stream.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of events collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Probe for CollectingProbe {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Fans one event stream out to two probes (e.g. collect the raw
/// stream *and* aggregate metrics in a single pass). Nest `Tee`s for
/// more than two.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&mut self, ev: &TraceEvent) {
        if self.0.enabled() {
            self.0.record(ev);
        }
        if self.1.enabled() {
            self.1.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exclusion_shmem::probe::{NoProbe, SpanScope};

    #[test]
    fn tee_routes_to_enabled_halves_only() {
        let ev = TraceEvent::SpanStart {
            scope: SpanScope::Run,
            tag: 0,
        };
        let mut tee = Tee(CollectingProbe::new(), NoProbe);
        assert!(tee.enabled());
        tee.record(&ev);
        tee.record(&ev);
        assert_eq!(tee.0.len(), 2);
        let disabled: Tee<NoProbe, NoProbe> = Tee(NoProbe, NoProbe);
        assert!(!disabled.enabled());
    }

    #[test]
    fn collector_preserves_order() {
        let mut c = CollectingProbe::new();
        assert!(c.is_empty());
        for tag in 0..3 {
            c.record(&TraceEvent::SpanStart {
                scope: SpanScope::Game,
                tag,
            });
        }
        let tags: Vec<u32> = c
            .into_events()
            .iter()
            .map(|ev| match ev {
                TraceEvent::SpanStart { tag, .. } => *tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }
}
