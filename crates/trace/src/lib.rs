//! Structured tracing, deterministic metrics, and exporters for the
//! execution, exploration, and adversary engines.
//!
//! The event vocabulary and the [`Probe`] trait live one crate down, in
//! [`exclusion_shmem::probe`] (re-exported here), because every engine
//! emits through them. This crate is the consumer side:
//!
//! * [`CollectingProbe`] — stores the raw event stream verbatim, for
//!   tests and exporters;
//! * [`Tee`] — fans one event stream out to two probes;
//! * [`Metrics`] — a bounded-memory, deterministic aggregator: counters
//!   plus fixed-bucket [`Hist`]ograms, mergeable in grid order so sweep
//!   metrics are bit-identical across worker counts;
//! * [`chrome_trace`] — exports a collected stream as Chrome
//!   trace-event JSON (loadable in Perfetto or `chrome://tracing`),
//!   with *logical* timestamps so two traces of the same run are
//!   byte-identical;
//! * [`metrics_json`] — flat metrics JSON (schema
//!   `exclusion-metrics/v1`);
//! * [`Progress`] — a live stderr reporter throttled by event *count*,
//!   so its output is deterministic under `--progress=every:N`.
//!
//! # Example
//!
//! Trace a full adversary game and export it:
//!
//! ```
//! use exclusion_bound::{force_probed, BoundConfig};
//! use exclusion_mutex::Peterson;
//! use exclusion_trace::{chrome_trace, CollectingProbe};
//!
//! let alg = Peterson::new(3);
//! let mut probe = CollectingProbe::new();
//! let run = force_probed(&alg, &BoundConfig::default(), &mut probe);
//! assert!(run.forced[0] > 0);
//! let json = chrome_trace(probe.events());
//! assert!(json.contains("awareness-merge"));
//! assert!(json.contains("cost-charge"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod metrics;
pub mod progress;

pub use chrome::{chrome_trace, CHROME_SCHEMA};
pub use collect::{CollectingProbe, Tee};
pub use exclusion_shmem::probe::{NoProbe, Probe, SharedProbe, SpanScope, TraceEvent};
pub use metrics::{metrics_json, Hist, Metrics, METRICS_SCHEMA};
pub use progress::Progress;
