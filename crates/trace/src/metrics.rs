//! The deterministic in-memory aggregator: counters plus fixed-bucket
//! histograms, bounded memory, mergeable.

use std::fmt::Write as _;

use exclusion_shmem::probe::{Probe, SpanScope, TraceEvent};
use exclusion_shmem::step::StepType;

/// Schema tag stamped into every metrics JSON document.
pub const METRICS_SCHEMA: &str = "exclusion-metrics/v1";

const BUCKETS: usize = 64;
const SCOPES: usize = SpanScope::ALL.len();

/// A fixed-memory power-of-two histogram: bucket 0 counts zeros,
/// bucket `b ≥ 1` counts values in `[2^(b-1), 2^b)`. 64 buckets cover
/// the full `u64` range, so observing never saturates or allocates.
/// Each bucket also remembers the largest value it has seen, so
/// quantile answers never exceed an actually-observed value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    maxima: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            maxima: [0; BUCKETS],
        }
    }
}

impl Hist {
    /// Bucket index for `v`.
    #[must_use]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Counts one observation of `v`.
    pub fn observe(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        self.buckets[b] += 1;
        self.maxima[b] = self.maxima[b].max(v);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The count in the bucket holding `v`.
    #[must_use]
    pub fn count_at(&self, v: u64) -> u64 {
        self.buckets[Self::bucket_of(v)]
    }

    /// Adds every bucket of `other` into `self` (commutative and
    /// associative, so merge order cannot change the result).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        for (a, b) in self.maxima.iter_mut().zip(other.maxima.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the observed values at
    /// the histogram's power-of-two resolution: nearest-rank selection
    /// over the buckets, returning the **largest value observed** in
    /// the bucket holding that rank.
    ///
    /// The bucket maximum makes the estimate conservative for
    /// latency-style reporting while never exceeding an
    /// actually-observed value, with a guaranteed bracket: for a
    /// positive exact quantile `x`, `x ≤ quantile(q) ≤ max observed`,
    /// and below the saturated top bucket additionally
    /// `quantile(q) < 2·x`. In particular a single sample in the top
    /// bucket no longer saturates the answer to `u64::MAX` — it
    /// reports the sample itself. For an all-zero distribution the
    /// result is exactly `0`. An empty histogram yields `0`. `q`
    /// outside `[0, 1]` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Nearest-rank: the smallest rank r (1-based) with r ≥ q·total.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.maxima[b];
            }
        }
        unreachable!("rank ≤ total, so some bucket holds it")
    }

    /// The buckets as a JSON array, trailing zero buckets trimmed.
    #[must_use]
    pub fn to_json(&self) -> String {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut out = String::from("[");
        for (i, c) in self.buckets[..last].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push(']');
        out
    }
}

/// Deterministic aggregate view of one or more event streams.
///
/// Feeding the same stream always produces the same `Metrics`, and
/// [`merge`](Metrics::merge) is commutative, so a sweep can aggregate
/// per-run metrics in grid order and get a bit-identical result for
/// any worker count — the same guarantee `sweep` itself makes.
/// Equality ignores accumulated span wall-clock time (measurement
/// metadata, mirroring how [`TraceEvent`] equality ignores
/// `SpanEnd::wall_ns`); everything else is compared.
///
/// Memory is bounded by construction: a fixed block of counters and
/// three fixed 64-bucket histograms, regardless of stream length.
#[derive(Clone, Default, Debug)]
pub struct Metrics {
    /// Total events recorded.
    pub events: u64,
    /// Executed steps.
    pub steps: u64,
    /// Executed read steps.
    pub reads: u64,
    /// Executed write steps.
    pub writes: u64,
    /// Executed RMW steps.
    pub rmws: u64,
    /// Executed critical steps (`try`/`enter`/`exit`/`rem`).
    pub crits: u64,
    /// Injected crash steps.
    pub crashes: u64,
    /// Recovery starts (first post-crash scheduling of a crashed process).
    pub recovers: u64,
    /// Steps whose acting process changed state (the SC condition).
    pub state_changes: u64,
    /// Steps charged under at least one model.
    pub charges: u64,
    /// Total SC cost observed.
    pub sc: u64,
    /// Total CC cost observed.
    pub cc: u64,
    /// Total DSM cost observed.
    pub dsm: u64,
    /// Adversary awareness-group merges.
    pub merges: u64,
    /// Adversary harvested charged reads.
    pub harvests: u64,
    /// Adversary revealed charged writes.
    pub reveals: u64,
    /// Explorer BFS layers completed.
    pub layers: u64,
    /// States first discovered across all layers.
    pub fresh_states: u64,
    /// Transposition-table dedup hits across all layers.
    pub dedup_hits: u64,
    /// Largest BFS frontier seen.
    pub peak_frontier: u64,
    /// Largest cumulative state count seen.
    pub peak_states: u64,
    /// SCC pump detections.
    pub pumps: u64,
    /// Spans started, indexed by [`SpanScope::index`].
    pub span_counts: [u64; SCOPES],
    /// Wall-clock accumulated per scope. Excluded from equality and
    /// from [`metrics_json`]; read it via
    /// [`span_wall_ns`](Metrics::span_wall_ns).
    span_wall_ns: [u64; SCOPES],
    /// Sizes of merged awareness groups.
    pub merged_sizes: Hist,
    /// Audience sizes of revealed writes.
    pub audiences: Hist,
    /// Nodes expanded per BFS layer.
    pub frontiers: Hist,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructure: adding a field without deciding its
        // equality role is a compile error. `span_wall_ns` is the one
        // deliberate exclusion (see the type docs).
        let Metrics {
            events,
            steps,
            reads,
            writes,
            rmws,
            crits,
            crashes,
            recovers,
            state_changes,
            charges,
            sc,
            cc,
            dsm,
            merges,
            harvests,
            reveals,
            layers,
            fresh_states,
            dedup_hits,
            peak_frontier,
            peak_states,
            pumps,
            span_counts,
            span_wall_ns: _,
            merged_sizes,
            audiences,
            frontiers,
        } = self;
        *events == other.events
            && *steps == other.steps
            && *reads == other.reads
            && *writes == other.writes
            && *rmws == other.rmws
            && *crits == other.crits
            && *crashes == other.crashes
            && *recovers == other.recovers
            && *state_changes == other.state_changes
            && *charges == other.charges
            && *sc == other.sc
            && *cc == other.cc
            && *dsm == other.dsm
            && *merges == other.merges
            && *harvests == other.harvests
            && *reveals == other.reveals
            && *layers == other.layers
            && *fresh_states == other.fresh_states
            && *dedup_hits == other.dedup_hits
            && *peak_frontier == other.peak_frontier
            && *peak_states == other.peak_states
            && *pumps == other.pumps
            && *span_counts == other.span_counts
            && *merged_sizes == other.merged_sizes
            && *audiences == other.audiences
            && *frontiers == other.frontiers
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Wall-clock nanoseconds accumulated by completed spans of
    /// `scope`. Non-deterministic by nature; never serialized.
    #[must_use]
    pub fn span_wall_ns(&self, scope: SpanScope) -> u64 {
        self.span_wall_ns[scope.index()]
    }

    /// Folds `other` into `self`: counters add, peaks take the max,
    /// histograms add bucket-wise.
    pub fn merge(&mut self, other: &Metrics) {
        self.events += other.events;
        self.steps += other.steps;
        self.reads += other.reads;
        self.writes += other.writes;
        self.rmws += other.rmws;
        self.crits += other.crits;
        self.crashes += other.crashes;
        self.recovers += other.recovers;
        self.state_changes += other.state_changes;
        self.charges += other.charges;
        self.sc += other.sc;
        self.cc += other.cc;
        self.dsm += other.dsm;
        self.merges += other.merges;
        self.harvests += other.harvests;
        self.reveals += other.reveals;
        self.layers += other.layers;
        self.fresh_states += other.fresh_states;
        self.dedup_hits += other.dedup_hits;
        self.peak_frontier = self.peak_frontier.max(other.peak_frontier);
        self.peak_states = self.peak_states.max(other.peak_states);
        self.pumps += other.pumps;
        for (a, b) in self.span_counts.iter_mut().zip(other.span_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.span_wall_ns.iter_mut().zip(other.span_wall_ns.iter()) {
            *a += b;
        }
        self.merged_sizes.merge(&other.merged_sizes);
        self.audiences.merge(&other.audiences);
        self.frontiers.merge(&other.frontiers);
    }

    /// The aggregate as one flat JSON document (see [`metrics_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        metrics_json(self)
    }
}

impl Probe for Metrics {
    fn record(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::Executed {
                ty, state_changed, ..
            } => {
                self.steps += 1;
                match ty {
                    StepType::Read => self.reads += 1,
                    StepType::Write => self.writes += 1,
                    StepType::Rmw => self.rmws += 1,
                    StepType::Crit => self.crits += 1,
                    // Counted via the dedicated `Crash` fault event, which
                    // every faulted driver emits exactly once per injection;
                    // priced streams carry both and must not double-count.
                    StepType::Crash => {}
                }
                self.state_changes += u64::from(state_changed);
            }
            TraceEvent::Crash { .. } => self.crashes += 1,
            TraceEvent::Recover { .. } => self.recovers += 1,
            TraceEvent::Charged { sc, cc, dsm, .. } => {
                self.charges += 1;
                self.sc += u64::from(sc);
                self.cc += u64::from(cc);
                self.dsm += u64::from(dsm);
            }
            TraceEvent::Merge { merged, .. } => {
                self.merges += 1;
                self.merged_sizes.observe(merged as u64);
            }
            TraceEvent::Harvest { .. } => self.harvests += 1,
            TraceEvent::Reveal { audience, .. } => {
                self.reveals += 1;
                self.audiences.observe(audience as u64);
            }
            TraceEvent::Layer {
                expanded,
                fresh,
                dedup,
                states,
                ..
            } => {
                self.layers += 1;
                self.fresh_states += fresh as u64;
                self.dedup_hits += dedup as u64;
                self.peak_frontier = self.peak_frontier.max(expanded.max(fresh) as u64);
                self.peak_states = self.peak_states.max(states as u64);
                self.frontiers.observe(expanded as u64);
            }
            TraceEvent::Pump { .. } => self.pumps += 1,
            TraceEvent::SpanStart { scope, .. } => self.span_counts[scope.index()] += 1,
            TraceEvent::SpanEnd { scope, wall_ns, .. } => {
                self.span_wall_ns[scope.index()] += wall_ns;
            }
        }
    }
}

/// Serializes a [`Metrics`] as one flat JSON document: schema tag,
/// every counter, per-scope span counts, and the trimmed histograms.
/// Span wall-clock is deliberately absent — the document is a pure
/// function of the event stream, so reports embedding it stay
/// deterministic.
#[must_use]
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{METRICS_SCHEMA}\",\"events\":{},\"steps\":{},\
         \"reads\":{},\"writes\":{},\"rmws\":{},\"crits\":{},\
         \"crashes\":{},\"recovers\":{},\
         \"state_changes\":{},\"charges\":{},\"sc\":{},\"cc\":{},\"dsm\":{},\
         \"merges\":{},\"harvests\":{},\"reveals\":{},\
         \"layers\":{},\"fresh_states\":{},\"dedup_hits\":{},\
         \"peak_frontier\":{},\"peak_states\":{},\"pumps\":{},\"spans\":{{",
        m.events,
        m.steps,
        m.reads,
        m.writes,
        m.rmws,
        m.crits,
        m.crashes,
        m.recovers,
        m.state_changes,
        m.charges,
        m.sc,
        m.cc,
        m.dsm,
        m.merges,
        m.harvests,
        m.reveals,
        m.layers,
        m.fresh_states,
        m.dedup_hits,
        m.peak_frontier,
        m.peak_states,
        m.pumps,
    );
    for (i, scope) in SpanScope::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", scope.name(), m.span_counts[i]);
    }
    let _ = write!(
        out,
        "}},\"hist\":{{\"merged_sizes\":{},\"audiences\":{},\"frontiers\":{}}}}}",
        m.merged_sizes.to_json(),
        m.audiences.to_json(),
        m.frontiers.to_json(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exclusion_shmem::ids::ProcessId;

    #[test]
    fn hist_buckets_are_powers_of_two() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.count_at(0), 1);
        assert_eq!(h.count_at(1), 1);
        assert_eq!(h.count_at(2), 2); // 2 and 3
        assert_eq!(h.count_at(5), 2); // 4, 7 share [4,8); 8 is next
        assert_eq!(h.count_at(u64::MAX), 1);
        assert_eq!(Hist::default().to_json(), "[]");
        let mut one = Hist::default();
        one.observe(2);
        assert_eq!(one.to_json(), "[0,0,1]");
    }

    /// `quantile` against exact nearest-rank quantiles on known
    /// distributions: the power-of-two bracket `x ≤ quantile(q) < 2x`
    /// must hold everywhere, and be exact where values are powers of
    /// two minus one (a bucket's whole mass on its upper edge).
    #[test]
    fn quantiles_bracket_exact_values_on_known_distributions() {
        // Uniform 1..=1000, exact quantile x = ceil(q·1000).
        let mut h = Hist::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        for q in [0.01f64, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = (q * 1000.0).ceil() as u64;
            let est = h.quantile(q);
            assert!(exact <= est && est < 2 * exact, "q={q}: {exact} vs {est}");
        }
        // A constant distribution on an upper bucket edge is exact.
        let mut h = Hist::default();
        for _ in 0..100 {
            h.observe(127);
        }
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 127);
        }
        // Two-point mass: the median sits on the low point, p99 on the
        // high one — nearest-rank, not interpolation.
        let mut h = Hist::default();
        for _ in 0..95 {
            h.observe(1);
        }
        for _ in 0..5 {
            h.observe(1_000_000);
        }
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.95), 1);
        let p99 = h.quantile(0.99);
        assert!((1_000_000..2_000_000).contains(&p99), "{p99}");
        // Zeros, emptiness, and the saturated top bucket.
        assert_eq!(Hist::default().quantile(0.5), 0);
        let mut h = Hist::default();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.quantile(1.0), 0);
        let mut h = Hist::default();
        h.observe(u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    /// Regression: a sample in the saturated top bucket must report
    /// the observed value, not `u64::MAX` — a single huge outlier used
    /// to poison the p99 column of `serve` reports.
    #[test]
    fn top_bucket_quantiles_clamp_to_the_observed_max() {
        // Two-point distribution with the heavy tail in the top bucket.
        let big = 1u64 << 63; // bucket 63, far below u64::MAX
        let mut h = Hist::default();
        for _ in 0..95 {
            h.observe(1);
        }
        for _ in 0..5 {
            h.observe(big);
        }
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), big, "p99 must be the observed max");
        assert_eq!(h.quantile(1.0), big);
        // Two-point mass inside one non-top bucket: the answer is the
        // bucket's own observed max, never its synthetic upper edge.
        let mut h = Hist::default();
        h.observe(130);
        h.observe(140); // both in [128, 256)
        assert_eq!(h.quantile(0.5), 140);
        assert_eq!(h.quantile(1.0), 140);
        // Merging keeps per-bucket maxima: max wins, bucket-wise.
        let mut a = Hist::default();
        a.observe(big);
        let mut b = Hist::default();
        b.observe(big + 17);
        a.merge(&b);
        assert_eq!(a.quantile(1.0), big + 17);
    }

    #[test]
    fn merge_is_order_independent_and_ignores_wall() {
        let ev_step = TraceEvent::Executed {
            index: 0,
            pid: ProcessId::new(1),
            ty: StepType::Write,
            reg: None,
            state_changed: true,
        };
        let ev_end = TraceEvent::SpanEnd {
            scope: SpanScope::Game,
            tag: 0,
            wall_ns: 123,
        };
        let mut a = Metrics::new();
        a.record(&ev_step);
        let mut b = Metrics::new();
        b.record(&ev_end);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.steps, 1);
        assert_eq!(ab.span_wall_ns(SpanScope::Game), 123);

        // Wall time never reaches equality or JSON.
        let mut no_wall = ab.clone();
        no_wall.span_wall_ns = [0; SCOPES];
        assert_eq!(ab, no_wall);
        assert_eq!(ab.to_json(), no_wall.to_json());
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let mut m = Metrics::new();
        m.record(&TraceEvent::Layer {
            depth: 1,
            expanded: 1,
            fresh: 5,
            dedup: 2,
            states: 6,
        });
        let json = m.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{METRICS_SCHEMA}\"")));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"dedup_hits\":2"));
        assert!(json.contains("\"peak_frontier\":5"));
    }
}
