//! Live progress on stderr, throttled by event count.

use exclusion_shmem::probe::{Probe, TraceEvent};

/// A probe that prints one status line to stderr every `N` events.
///
/// The throttle is the event *count*, never wall-clock, and the line
/// renders only deterministic counters — so the full progress output
/// of `--progress=every:N` is a pure function of the run, suitable for
/// golden-file comparison and stable across machines. Counting is a
/// handful of integer adds per event, cheap enough to leave on for any
/// run worth watching.
#[derive(Clone, Debug)]
pub struct Progress {
    every: u64,
    seen: u64,
    steps: u64,
    sc: u64,
    cc: u64,
    dsm: u64,
    merges: u64,
    groups: u64,
    layers: u64,
    states: u64,
}

impl Progress {
    /// Reports every `every` events; `every == 0` disables output (the
    /// counters still accumulate).
    #[must_use]
    pub fn new(every: u64) -> Self {
        Progress {
            every,
            seen: 0,
            steps: 0,
            sc: 0,
            cc: 0,
            dsm: 0,
            merges: 0,
            groups: 0,
            layers: 0,
            states: 0,
        }
    }

    /// Events seen so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The status line for the current counters (what gets printed at
    /// each throttle boundary).
    #[must_use]
    pub fn line(&self) -> String {
        let mut line = format!(
            "[trace] events {} | steps {} | sc {} cc {} dsm {}",
            self.seen, self.steps, self.sc, self.cc, self.dsm
        );
        if self.merges > 0 {
            line.push_str(&format!(
                " | merges {} (groups {})",
                self.merges, self.groups
            ));
        }
        if self.layers > 0 {
            line.push_str(&format!(" | layers {} states {}", self.layers, self.states));
        }
        line
    }
}

impl Probe for Progress {
    fn record(&mut self, ev: &TraceEvent) {
        self.seen += 1;
        match *ev {
            TraceEvent::Executed { .. } => self.steps += 1,
            TraceEvent::Charged { sc, cc, dsm, .. } => {
                self.sc += u64::from(sc);
                self.cc += u64::from(cc);
                self.dsm += u64::from(dsm);
            }
            TraceEvent::Merge { groups, .. } => {
                self.merges += 1;
                self.groups = groups as u64;
            }
            TraceEvent::Layer { states, .. } => {
                self.layers += 1;
                self.states = states as u64;
            }
            _ => {}
        }
        if self.every > 0 && self.seen.is_multiple_of(self.every) {
            eprintln!("{}", self.line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exclusion_shmem::ids::{ProcessId, RegisterId};
    use exclusion_shmem::step::StepType;

    #[test]
    fn line_is_a_pure_function_of_the_counters() {
        let mut p = Progress::new(0);
        p.record(&TraceEvent::Executed {
            index: 0,
            pid: ProcessId::new(0),
            ty: StepType::Write,
            reg: Some(RegisterId::new(0)),
            state_changed: true,
        });
        p.record(&TraceEvent::Charged {
            index: 0,
            pid: ProcessId::new(0),
            reg: RegisterId::new(0),
            sc: 1,
            cc: 1,
            dsm: 1,
        });
        assert_eq!(p.seen(), 2);
        assert_eq!(p.line(), "[trace] events 2 | steps 1 | sc 1 cc 1 dsm 1");
        p.record(&TraceEvent::Merge {
            index: 1,
            reader: ProcessId::new(1),
            writer: ProcessId::new(0),
            merged: 2,
            groups: 4,
        });
        assert!(p.line().ends_with("merges 1 (groups 4)"));
    }
}
