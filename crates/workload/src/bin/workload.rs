//! The `workload` CLI: build a scenario grid, run a sharded sweep,
//! print a summary table, and optionally write JSON/CSV reports — plus
//! the `explore` subcommand for exhaustive small-`n` certification, the
//! `bound` subcommand for adaptive forced-cost curves, and the `crash`
//! subcommand for crash-recoverable certification and forced-RMR
//! curves under a crash-budget adversary.
//!
//! ```text
//! workload                                  # default grid, all cores
//! workload --algs dekker-tree,bakery --n 8 --passages 2 \
//!          --scheds greedy,random,burst,stagger --seeds 8 \
//!          --threads 4 --json sweep.json --csv sweep.csv
//! workload --algs filter:levels=6 --scheds burst:wave=2,gap=32
//! workload --list                           # both registries, with metadata
//! workload explore --n 3 --model sc --json explore.json
//! workload explore --algs broken --n 2      # catch the planted race
//! workload bound --algs all --n 4..64       # force the Ω(n log n) bound
//! workload crash --sched fanlynch:crashes=2 # certify + crash the locks
//! ```
//!
//! Algorithms and schedulers are registry specs; unknown names fail
//! with the registry contents and a nearest-name suggestion.

use std::fmt::Write as _;
use std::process::ExitCode;

use exclusion_explore::{analyze, explore, report as xreport, ExploreConfig, Model};
use exclusion_mutex::registry::AlgorithmRegistry;
use exclusion_workload::schedreg::SchedulerRegistry;
use exclusion_workload::{sweep, Scenario, SchedSpec, SweepOptions};

const USAGE: &str = "\
workload — adversarial scenario sweeps over the mutual exclusion suite

USAGE:
    workload [OPTIONS]            sampled cost sweep (the default mode)
    workload explore [OPTIONS]    exhaustive exploration (see explore --help)
    workload bound [OPTIONS]      adaptive forced-cost curves (see bound --help)
    workload crash [OPTIONS]      crash-recoverable certification and
                                  forced-RMR curves (see crash --help)
    workload trace [OPTIONS]      trace one run to Chrome/Perfetto JSON
                                  (see trace --help)
    workload serve [OPTIONS]      open-stream lock service: arrival
                                  models, deadlines, live percentiles
                                  (see serve --help)
    workload hwbench [OPTIONS]    formal-vs-hardware differential: same
                                  arrival schedule simulated and run on
                                  real atomics (see hwbench --help)

OPTIONS:
    --algs A,B,...       algorithm specs to sweep (default:
                         dekker-tree,peterson); parameterized specs like
                         filter:levels=6 or ttas-sim:backoff=4 work
    --n N                processes per run (default: 8)
    --passages P         passages per process (default: 2)
    --scheds S,T,...     scheduler specs: sequential | round-robin |
                         random | greedy | burst[:wave=W,gap=G] |
                         stagger[:stride=S] (legacy burst:WxG and
                         stagger:S also parse; default:
                         greedy,random,burst,stagger)

                         Multi-parameter specs work inside a list
                         (greedy,burst:wave=2,gap=32,stagger parses as
                         two specs: a `k=v` fragment cannot start a
                         spec, so it attaches to the one before it),
                         and repeating --algs/--scheds appends
    --seeds K            seed-grid size for seeded schedulers (default: 8)
    --seed-base B        first seed of the grid (default: 1)
    --threads T          worker threads, 0 = one per core (default: 0)
    --max-steps N        step budget per run (default: 50000000)
    --no-record          stream costs in a single pass without recording
                         executions (the default engine)
    --record             record every execution and price it by replay
                         (the legacy engine; same results, ~4x the work —
                         kept for A/B measurement)
    --json PATH          write the JSON report (`-` for stdout)
    --csv PATH           write the per-run CSV (`-` for stdout)
    --metrics PATH       aggregate trace metrics over every run and
                         write the metrics JSON (`-` for stdout)
    --quiet              suppress the summary table and timing
    --list               print both registries (entries, parameters,
                         metadata) and exit
    --list-algs          print known algorithm names and exit
    --help               this text
";

struct Args {
    algs: Vec<String>,
    n: usize,
    passages: usize,
    scheds: Vec<String>,
    seeds: u64,
    seed_base: u64,
    threads: usize,
    max_steps: usize,
    record: bool,
    json: Option<String>,
    csv: Option<String>,
    metrics: Option<String>,
    quiet: bool,
}

/// Splits a comma-separated spec list, keeping multi-parameter specs
/// whole: a fragment that cannot *start* a spec (its name part
/// contains `=`) is a continuation of the previous spec's parameter
/// list, so `greedy,burst:wave=2,gap=32` is two specs, not three.
fn split_specs(s: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for part in s.split(',') {
        let starts_spec = !part.split(':').next().unwrap_or("").contains('=');
        match out.last_mut() {
            Some(last) if !starts_spec => {
                last.push(',');
                last.push_str(part);
            }
            _ => out.push(part.to_string()),
        }
    }
    out
}

/// Both registries rendered as aligned text — the CLI's `--list`.
fn render_registries(algs: &AlgorithmRegistry, scheds: &SchedulerRegistry) -> String {
    let mut out = String::from("algorithms:\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>5}  {:<5} {:<11} summary / params",
        "name", "min_n", "rmw", "cost"
    );
    for e in algs.entries() {
        let i = e.info();
        let _ = writeln!(
            out,
            "  {:<12} {:>5}  {:<5} {:<11} {}",
            i.name, i.min_n, i.uses_rmw, i.cost_class, i.summary
        );
        for p in &i.params {
            let _ = writeln!(out, "  {:<37} :{}=…  {}", "", p.key, p.help);
        }
    }
    out.push_str("\nschedulers:\n");
    let _ = writeln!(
        out,
        "  {:<17} {:<7} {:<18} summary / params",
        "name", "seeded", "aliases"
    );
    for e in scheds.entries() {
        let i = e.info();
        let _ = writeln!(
            out,
            "  {:<17} {:<7} {:<18} {}",
            i.name,
            i.seeded,
            i.aliases.join(","),
            i.summary
        );
        for p in &i.params {
            let _ = writeln!(out, "  {:<44} :{}=…  {}", "", p.key, p.help);
        }
    }
    out
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        algs: vec!["dekker-tree".into(), "peterson".into()],
        n: 8,
        passages: 2,
        scheds: vec![
            "greedy".into(),
            "random".into(),
            "burst".into(),
            "stagger".into(),
        ],
        seeds: 8,
        seed_base: 1,
        threads: 0,
        max_steps: 50_000_000,
        record: false,
        json: None,
        csv: None,
        metrics: None,
        quiet: false,
    };
    // First --algs/--scheds replaces the default list; repeats append,
    // so multi-parameter specs (whose commas would collide with the
    // list separator) can ride in their own flag occurrence.
    let mut algs_set = false;
    let mut scheds_set = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algs" => {
                let mut items = split_specs(&value()?);
                if !std::mem::replace(&mut algs_set, true) {
                    args.algs.clear();
                }
                args.algs.append(&mut items);
            }
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--passages" => {
                args.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?;
            }
            "--scheds" => {
                let mut items = split_specs(&value()?);
                if !std::mem::replace(&mut scheds_set, true) {
                    args.scheds.clear();
                }
                args.scheds.append(&mut items);
            }
            "--seeds" => args.seeds = value()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--seed-base" => {
                args.seed_base = value()?.parse().map_err(|e| format!("--seed-base: {e}"))?;
            }
            "--threads" => {
                args.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--max-steps" => {
                args.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--record" => args.record = true,
            "--no-record" => args.record = false,
            "--json" => args.json = Some(value()?),
            "--csv" => args.csv = Some(value()?),
            "--metrics" => args.metrics = Some(value()?),
            "--quiet" => args.quiet = true,
            "--list" => {
                print!(
                    "{}",
                    render_registries(AlgorithmRegistry::global(), SchedulerRegistry::global())
                );
                return Ok(None);
            }
            "--list-algs" => {
                for name in AlgorithmRegistry::global().names() {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.seeds == 0 {
        return Err("--seeds must be positive".into());
    }
    Ok(Some(args))
}

/// The grid is wired through the registries: scenario construction
/// parses both specs and resolves them once, so unknown names and bad
/// parameters fail here — with the registry contents and a
/// nearest-name suggestion in the message — before anything runs.
fn build_grid(args: &Args) -> Result<Vec<Scenario>, String> {
    let seeds: Vec<u64> = (0..args.seeds).map(|k| args.seed_base + k).collect();
    let mut scenarios = Vec::new();
    for alg in &args.algs {
        for sched_name in &args.scheds {
            let sched = SchedSpec::parse(sched_name).map_err(|e| e.to_string())?;
            let scenario = Scenario::builder(alg.clone(), args.n)
                .passages(args.passages)
                .sched(sched)
                .seeds(seeds.iter().copied())
                .max_steps(args.max_steps)
                .build()
                .map_err(|e| e.to_string())?;
            scenarios.push(scenario);
        }
    }
    Ok(scenarios)
}

fn emit(path: &str, what: &str, content: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content).map_err(|e| format!("writing {what} to {path}: {e}"))?;
        eprintln!("wrote {what} to {path}");
        Ok(())
    }
}

const EXPLORE_USAGE: &str = "\
workload explore — exhaustive bounded exploration: certified safety
verdicts and exact worst-case costs

USAGE:
    workload explore [OPTIONS]

OPTIONS:
    --algs A,B,...       algorithm specs to explore (default: every
                         entry of the conformance registry — the
                         standard suite plus the deliberately unsafe
                         `broken` lock)
    --n N                processes per instance (default: 3)
    --passages P         passage bound per process (default: 1)
    --model M            cost model for the worst-case search:
                         sc | cc | dsm (default: sc)
    --depth D            BFS depth bound (default: none)
    --max-states S       transposition-table cap (default: 2000000)
    --workers W          worker threads, 0 = one per core (default: 0)
    --no-worst           skip the exact worst-case search (verdicts only)
    --no-symmetry        disable orbit reduction (explore the raw state
                         space even for symmetric algorithms)
    --por                enable ample-set partial-order reduction for
                         the certification pass (verdict-preserving;
                         the worst-case search always runs without it,
                         and witness depths may exceed the minimum)
    --compress           store 128-bit fingerprints instead of full
                         snapshots in the transposition table (verdicts
                         then hold modulo fingerprint collisions)
    --spill              stream BFS frontiers through an unlinked temp
                         file instead of holding them in memory
    --json PATH          write the JSON report (`-` for stdout)
    --quiet              suppress the text table
    --help               this text

Exit status is nonzero when any explored algorithm other than `broken`
fails certification, or when `broken` is explored and NOT caught.
";

struct ExploreArgs {
    algs: Vec<String>,
    n: usize,
    model: Model,
    no_worst: bool,
    json: Option<String>,
    quiet: bool,
    cfg: ExploreConfig,
}

fn parse_explore_args(argv: &[String]) -> Result<Option<ExploreArgs>, String> {
    let mut args = ExploreArgs {
        algs: Vec::new(),
        n: 3,
        model: Model::Sc,
        no_worst: false,
        json: None,
        quiet: false,
        cfg: ExploreConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algs" => args.algs.extend(split_specs(&value()?)),
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--passages" => {
                args.cfg.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?;
            }
            "--model" => {
                let v = value()?;
                args.model = Model::parse(&v)
                    .ok_or_else(|| format!("--model: `{v}` is not one of sc|cc|dsm"))?;
            }
            "--depth" => {
                args.cfg.max_depth = Some(value()?.parse().map_err(|e| format!("--depth: {e}"))?);
            }
            "--max-states" => {
                args.cfg.max_states = value()?.parse().map_err(|e| format!("--max-states: {e}"))?;
            }
            "--workers" => {
                args.cfg.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--no-worst" => args.no_worst = true,
            "--no-symmetry" => args.cfg.symmetry = false,
            "--por" => args.cfg.por = true,
            "--compress" => args.cfg.compress = true,
            "--spill" => args.cfg.spill = true,
            "--json" => args.json = Some(value()?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{EXPLORE_USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try explore --help)")),
        }
    }
    if args.cfg.passages == 0 {
        return Err("--passages must be positive".into());
    }
    // The explorer's transposition table caps the instance size; turn
    // its internal asserts into flag errors.
    if args.n == 0 || args.n > 64 {
        return Err("--n must be between 1 and 64 (the explorer's process cap)".into());
    }
    // Single source of truth for the node-id budget: the explorer's
    // own structured validation, surfaced as a flag error with the
    // actual limit spelled out instead of an assert mid-run.
    if let Err(e) = args.cfg.validated() {
        return Err(e.to_string());
    }
    Ok(Some(args))
}

fn run_explore(argv: &[String]) -> Result<(), String> {
    let Some(args) = parse_explore_args(argv)? else {
        return Ok(());
    };
    let registry = exclusion_explore::conformance_registry();
    let specs: Vec<String> = if args.algs.is_empty() {
        registry
            .names()
            .into_iter()
            .filter(|name| {
                // Skip entries the requested n cannot instantiate (the
                // default grid at n=1 would otherwise trip on `broken`).
                registry.get(name).is_some_and(|e| e.info().min_n <= args.n)
            })
            .collect()
    } else {
        args.algs.clone()
    };

    let mut rows: Vec<Vec<String>> = vec![[
        "algorithm",
        "states",
        "edges",
        "depth",
        "safe",
        "dl-free",
        "worst",
        "greedy",
        "note",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()];
    let mut json_items: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for spec in &specs {
        let resolved = registry
            .resolve_str(spec, args.n)
            .map_err(|e| e.to_string())?;
        let alg = resolved.automaton;
        // `analyze` shares one graph between certification and the SC
        // worst-case search; `--no-worst` skips the search entirely.
        let (report, worst) = if args.no_worst {
            (explore(alg.as_ref(), &args.cfg), None)
        } else {
            analyze(alg.as_ref(), args.model, &args.cfg)
        };
        let note = if let Some(v) = &report.violation {
            format!(
                "violation in {} steps ({} and {} in critical)",
                v.schedule.len(),
                v.culprits.0.index(),
                v.culprits.1.index()
            )
        } else if let Some(h) = &report.hazard {
            format!("{} ({} doomed states)", h.kind, h.doomed_states)
        } else if report.truncated {
            format!(
                "truncated at {} states, not certified — raise --max-states",
                report.states
            )
        } else {
            String::new()
        };
        // `broken` must be caught; everything else must certify what
        // its registry metadata promises: mutual exclusion always, and
        // deadlock-freedom unless the entry disclaims it (the splitter
        // locks), in which case the hazard must be *found* — a certified
        // negative, not a free pass. A truncated run proves nothing
        // either way, so it always fails with the explicit diagnostic
        // rather than a clean pass.
        let caught = report.violation.is_some();
        if resolved.label == "broken" {
            if !caught {
                if report.truncated {
                    failures.push(format!("{}: {note}", resolved.label));
                } else {
                    failures.push(format!("{}: planted race NOT caught", resolved.label));
                }
            }
        } else if report.truncated {
            failures.push(format!("{}: {note}", resolved.label));
        } else if resolved.deadlock_free {
            if !report.certified_deadlock_free() {
                failures.push(format!("{}: not certified ({note})", resolved.label));
            }
        } else if !report.certified_safe() {
            failures.push(format!("{}: not certified safe ({note})", resolved.label));
        } else if args.n > 1 && report.hazard.is_none() {
            failures.push(format!(
                "{}: expected contention hazard NOT found",
                resolved.label
            ));
        }
        rows.push(vec![
            resolved.label.clone(),
            report.states.to_string(),
            report.edges.to_string(),
            report.depth.to_string(),
            if caught {
                "NO"
            } else if report.certified_safe() {
                "yes"
            } else {
                "?" // truncated: nothing was proved
            }
            .to_string(),
            if caught || report.hazard.is_some() {
                "NO"
            } else if report.certified_deadlock_free() {
                "yes"
            } else {
                "?"
            }
            .to_string(),
            worst
                .as_ref()
                .map_or_else(|| "-".into(), |w| xreport::cost_label(&w.cost)),
            worst
                .as_ref()
                .map_or_else(|| "-".into(), |w| w.incumbent.to_string()),
            note,
        ]);
        let mut item = format!("{{\"explore\":{}", xreport::explore_json(&report));
        match &worst {
            Some(w) => {
                let _ = write!(item, ",\"worst\":{}}}", xreport::worst_json(w));
            }
            None => item.push_str(",\"worst\":null}"),
        }
        json_items.push(item);
    }

    if !args.quiet {
        // First and last (note) columns left-aligned, numbers right.
        let cols = rows[0].len();
        print!(
            "{}",
            exclusion_workload::report::text_table(&rows, &[0, cols - 1])
        );
    }
    if let Some(path) = &args.json {
        let json = format!(
            "{{\"schema\":\"{}\",\"n\":{},\"passages\":{},\"model\":\"{}\",\"results\":[{}]}}",
            xreport::JSON_SCHEMA,
            args.n,
            args.cfg.passages,
            args.model,
            json_items.join(",")
        );
        emit(path, "JSON report", &json)?;
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

const BOUND_USAGE: &str = "\
workload bound — play the adaptive lower-bound adversary game and
report the forced cost per model, with a least-squares fit of the SC
curve against the paper's c·n·log₂n growth law

USAGE:
    workload bound [OPTIONS]

OPTIONS:
    --algs A,B,...|all   algorithm specs to force (default: all — every
                         registry entry)
    --n LO..HI|N,M,...   the n grid: a doubling range (4..64 means
                         4,8,16,32,64; the upper end is always
                         included) or an explicit comma list
                         (default: 4..64)
    --passages P         passages per process (default: 1)
    --seed S             adaptive tie-break seed (default: 0)
    --patience K         starvation-valve threshold for both portfolio
                         strategies (default: 4n+4)
    --max-steps N        step budget per strategy run (default: 50000000)
    --json PATH          write the JSON report (`-` for stdout)
    --quiet              suppress the text table
    --help               this text

Exit status is nonzero when any game fails to complete within its step
budget, when the forced cost falls below the greedy baseline anywhere
(the adversary portfolio must dominate it), or when a completed SC
curve does not fit c·n·log₂n with c > 0.
";

struct BoundArgs {
    algs: Vec<String>,
    ns: Vec<usize>,
    json: Option<String>,
    quiet: bool,
    cfg: exclusion_bound::BoundConfig,
}

/// Parses the `--n` grid: `LO..HI` (doubling, upper end included) or an
/// explicit comma list.
fn parse_grid(s: &str) -> Result<Vec<usize>, String> {
    let ns = if let Some((lo, hi)) = s.split_once("..") {
        let lo: usize = lo.parse().map_err(|e| format!("--n: {e}"))?;
        let hi: usize = hi.parse().map_err(|e| format!("--n: {e}"))?;
        exclusion_bound::doubling_grid(lo, hi)
    } else {
        s.split(',')
            .map(|part| part.parse().map_err(|e| format!("--n: {e}")))
            .collect::<Result<Vec<usize>, String>>()?
    };
    if ns.is_empty() || ns.contains(&0) {
        return Err(format!("--n: `{s}` is not a usable grid"));
    }
    Ok(ns)
}

fn parse_bound_args(argv: &[String]) -> Result<Option<BoundArgs>, String> {
    let mut args = BoundArgs {
        algs: Vec::new(),
        ns: exclusion_bound::doubling_grid(4, 64),
        json: None,
        quiet: false,
        cfg: exclusion_bound::BoundConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algs" => args.algs.extend(split_specs(&value()?)),
            "--n" => args.ns = parse_grid(&value()?)?,
            "--passages" => {
                args.cfg.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?;
            }
            "--seed" => args.cfg.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--patience" => {
                args.cfg.patience = Some(value()?.parse().map_err(|e| format!("--patience: {e}"))?);
            }
            "--max-steps" => {
                args.cfg.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--json" => args.json = Some(value()?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{BOUND_USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try bound --help)")),
        }
    }
    if args.cfg.passages == 0 {
        return Err("--passages must be positive".into());
    }
    if args.algs.is_empty() || args.algs.iter().any(|a| a == "all") {
        // A forced-passage game only terminates against locks that
        // guarantee progress; entries disclaiming deadlock-freedom
        // (the splitter locks) are excluded from `all`, though naming
        // one explicitly still plays it (and reports its stall).
        args.algs = AlgorithmRegistry::global()
            .entries()
            .filter(|e| e.info().deadlock_free)
            .map(|e| e.info().name.clone())
            .collect();
    }
    Ok(Some(args))
}

fn run_bound(argv: &[String]) -> Result<(), String> {
    use exclusion_bound::{force_curve, BoundCurve, MODELS, SC};

    let Some(args) = parse_bound_args(argv)? else {
        return Ok(());
    };
    let registry = AlgorithmRegistry::global();
    let mut curves: Vec<BoundCurve> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let start = std::time::Instant::now();
    for spec in &args.algs {
        let curve = force_curve(registry, spec, &args.ns, &args.cfg).map_err(|e| e.to_string())?;
        for cell in &curve.cells {
            if !cell.completed() {
                failures.push(format!(
                    "{} n={}: no strategy completed ({})",
                    curve.algorithm,
                    cell.n,
                    cell.errors.join("; ")
                ));
                continue;
            }
            for (m, model) in MODELS.iter().enumerate() {
                if cell.forced[m] < cell.greedy[m] {
                    failures.push(format!(
                        "{} n={} {model}: forced {} below greedy {}",
                        curve.algorithm, cell.n, cell.forced[m], cell.greedy[m]
                    ));
                }
            }
        }
        if curve
            .cells
            .iter()
            .any(exclusion_bound::ForcedRun::completed)
            && curve.fits[SC].c <= 0.0
        {
            failures.push(format!(
                "{}: SC fit c = {} is not positive",
                curve.algorithm, curve.fits[SC].c
            ));
        }
        curves.push(curve);
    }

    if !args.quiet {
        let mut rows: Vec<Vec<String>> = vec![[
            "algorithm",
            "n",
            "steps",
            "sc",
            "sc-adapt",
            "sc-greedy",
            "cc",
            "dsm",
            "winner",
            "note",
        ]
        .iter()
        .map(ToString::to_string)
        .collect()];
        for curve in &curves {
            for cell in &curve.cells {
                rows.push(vec![
                    curve.algorithm.clone(),
                    cell.n.to_string(),
                    cell.steps.to_string(),
                    cell.forced[0].to_string(),
                    cell.adaptive[0].to_string(),
                    cell.greedy[0].to_string(),
                    cell.forced[1].to_string(),
                    cell.forced[2].to_string(),
                    cell.winner[SC].to_string(),
                    cell.errors.join("; "),
                ]);
            }
        }
        let cols = rows[0].len();
        print!(
            "{}",
            exclusion_workload::report::text_table(&rows, &[0, cols - 2, cols - 1])
        );
        for curve in &curves {
            println!(
                "{}: sc ≈ {:.2}·n·log₂n (r² {:.3}); cc c={:.2}, dsm c={:.2}",
                curve.algorithm,
                curve.fits[0].c,
                curve.fits[0].r2,
                curve.fits[1].c,
                curve.fits[2].c
            );
        }
        eprintln!(
            "forced {} curves / {} games in {:.1} ms",
            curves.len(),
            curves.iter().map(|c| c.cells.len()).sum::<usize>(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    if let Some(path) = &args.json {
        emit(path, "JSON report", &bound_json(&args, &curves))?;
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Hand-rolled JSON for the bound report, matching the house style of
/// the sweep and explore reports. Witness schedules are summarized by
/// length (they can run to millions of picks); replay them via the
/// library API instead.
fn bound_json(args: &BoundArgs, curves: &[exclusion_bound::BoundCurve]) -> String {
    use exclusion_bound::{models_json, MODELS};
    use exclusion_explore::report::json_escape;

    let mut out = format!(
        "{{\"schema\":\"exclusion-bound/v1\",\"passages\":{},\"seed\":{},\"max_steps\":{},\"grid\":{:?},\"curves\":[",
        args.cfg.passages, args.cfg.seed, args.cfg.max_steps, args.ns
    );
    for (i, curve) in curves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algorithm\":\"{}\",\"fits\":{{",
            json_escape(&curve.algorithm)
        );
        for (m, model) in MODELS.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{model}\":{{\"c\":{:.6},\"r2\":{:.6}}}",
                if m > 0 { "," } else { "" },
                curve.fits[m].c,
                curve.fits[m].r2
            );
        }
        out.push_str("},\"cells\":[");
        for (j, cell) in curve.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let errors = cell
                .errors
                .iter()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"n\":{},\"steps\":{},\"schedule_len\":{},\"forced\":{{{}}},\"adaptive\":{{{}}},\"greedy\":{{{}}},\"winner\":\"{}\",\"errors\":[{errors}]}}",
                cell.n,
                cell.steps,
                cell.schedule.len(),
                models_json(&cell.forced),
                models_json(&cell.adaptive),
                models_json(&cell.greedy),
                cell.winner[0],
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

const CRASH_USAGE: &str = "\
workload crash — the crash-budget adversary: exhaustively certify every
recoverable lock against bounded crash injection, then play the crash
game and report the forced cost in remote memory references (RMR-CC /
RMR-DSM) per crash budget

USAGE:
    workload crash [OPTIONS]

OPTIONS:
    --algs A,B,...|all   algorithm specs (default: every registry entry
                         claiming `recoverable`, the planted
                         broken-recover included)
    --n LO..HI|N,M,...   the n grid for the crash game (default: 2,3)
    --crashes K          the crash budget: games sweep every k in 0..=K
                         and certification uses K itself (default: from
                         --sched, else 1)
    --sched SPEC         a scheduler spec whose `crashes=` parameter
                         supplies the budget when --crashes is absent
                         (e.g. fanlynch:crashes=2). The game itself
                         always plays the full adaptive + greedy
                         portfolio; the spec is the budget's spelling,
                         not a strategy override (default: fanlynch)
    --no-certify         skip the exhaustive certification pass
    --no-symmetry        disable orbit reduction in the certification
                         pass (partial-order reduction is never applied
                         under crash branching)
    --compress           fingerprint the certification pass's
                         transposition table
    --spill              stream certification BFS frontiers through an
                         unlinked temp file
    --max-states S       certification transposition-table cap
                         (default: 2000000)
    --passages P         passages per process (default: 1)
    --seed S             adaptive tie-break seed (default: 0)
    --patience K         starvation-valve threshold for both portfolio
                         strategies (default: 4n+4)
    --max-steps N        step budget per strategy run (default: 50000000)
    --json PATH          write the JSON report (`-` for stdout)
    --quiet              suppress the text tables
    --help               this text

Certification explores the product of system states and crashes-used
exhaustively, so it runs only at the grid points with n <= 3; honest
locks must certify and the planted broken-recover must be refuted with
a replayable crash witness. Exit status is nonzero when either
expectation fails, when any crash game fails to complete, or when a
forced RMR cost falls below the greedy baseline.
";

struct CrashArgs {
    algs: Vec<String>,
    ns: Vec<usize>,
    budget: usize,
    certify: bool,
    json: Option<String>,
    quiet: bool,
    cfg: exclusion_bound::BoundConfig,
    /// Explorer knobs for the certification pass (`passages` is taken
    /// from `cfg` so the game and the certification agree on bounds).
    xcfg: ExploreConfig,
}

fn parse_crash_args(argv: &[String]) -> Result<Option<CrashArgs>, String> {
    let mut args = CrashArgs {
        algs: Vec::new(),
        ns: vec![2, 3],
        budget: 0,
        certify: true,
        json: None,
        quiet: false,
        cfg: exclusion_bound::BoundConfig::default(),
        xcfg: ExploreConfig::default(),
    };
    let mut sched = String::from("fanlynch");
    let mut crashes: Option<usize> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algs" => args.algs.extend(split_specs(&value()?)),
            "--n" => args.ns = parse_grid(&value()?)?,
            "--crashes" => {
                crashes = Some(value()?.parse().map_err(|e| format!("--crashes: {e}"))?);
            }
            "--sched" => sched = value()?,
            "--no-certify" => args.certify = false,
            "--no-symmetry" => args.xcfg.symmetry = false,
            "--compress" => args.xcfg.compress = true,
            "--spill" => args.xcfg.spill = true,
            "--max-states" => {
                args.xcfg.max_states =
                    value()?.parse().map_err(|e| format!("--max-states: {e}"))?;
            }
            "--passages" => {
                args.cfg.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?;
            }
            "--seed" => args.cfg.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--patience" => {
                args.cfg.patience = Some(value()?.parse().map_err(|e| format!("--patience: {e}"))?);
            }
            "--max-steps" => {
                args.cfg.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--json" => args.json = Some(value()?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{CRASH_USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try crash --help)")),
        }
    }
    if args.cfg.passages == 0 {
        return Err("--passages must be positive".into());
    }
    // The budget comes from --crashes, else from the scheduler spec's
    // `crashes=` parameter (`fanlynch:crashes=2`), else defaults to 1.
    // Resolving through the registry also validates the spelling, so
    // `fanlynch:crashes=-1` fails here with the registry's own error.
    let resolved = SchedulerRegistry::global()
        .resolve_str(&sched, 2)
        .map_err(|e| format!("--sched: {e}"))?;
    args.budget = match crashes {
        Some(k) => k,
        None if resolved.crashes > 0 => resolved.crashes,
        None => 1,
    };
    // Same structured validation as the explore subcommand: an
    // oversized --max-states is a flag error, not a mid-run assert.
    if let Err(e) = args.xcfg.validated() {
        return Err(e.to_string());
    }
    if args.algs.is_empty() || args.algs.iter().any(|a| a == "all") {
        args.algs = AlgorithmRegistry::global()
            .entries()
            .filter(|e| e.info().recoverable)
            .map(|e| e.info().name.clone())
            .collect();
    }
    Ok(Some(args))
}

fn run_crash(argv: &[String]) -> Result<(), String> {
    use exclusion_bound::{force_crash_curve, CrashCurve, RMR_CC, RMR_MODELS};
    use exclusion_explore::certify_recoverable;

    let Some(args) = parse_crash_args(argv)? else {
        return Ok(());
    };
    let registry = AlgorithmRegistry::global();
    let ks: Vec<usize> = (0..=args.budget).collect();
    let mut failures: Vec<String> = Vec::new();
    let start = std::time::Instant::now();

    // Pass 1: exhaustive certification at the small grid points. The
    // planted broken-recover must be refuted, honest locks must certify.
    let mut certs: Vec<(String, usize, exclusion_explore::CrashReport)> = Vec::new();
    if args.certify {
        let xcfg = ExploreConfig {
            passages: args.cfg.passages,
            ..args.xcfg
        };
        for spec in &args.algs {
            for &n in args.ns.iter().filter(|&&n| n <= 3) {
                let resolved = registry.resolve_str(spec, n).map_err(|e| e.to_string())?;
                let report = certify_recoverable(resolved.automaton.as_ref(), args.budget, &xcfg);
                let planted = resolved.label == "broken-recover";
                // A truncated exploration certifies (and refutes)
                // nothing: fail loudly instead of printing a clean
                // pass, whatever the entry.
                if report.truncated && report.violation.is_none() {
                    failures.push(format!(
                        "{} n={n}: truncated at {} states, not certified under {} crashes \
                         — raise the state cap",
                        resolved.label, report.states, args.budget
                    ));
                } else if planted && args.budget > 0 && report.violation.is_none() {
                    failures.push(format!(
                        "{} n={n}: planted unsafe recovery NOT caught under {} crashes",
                        resolved.label, args.budget
                    ));
                } else if !planted && !report.certified_recoverable() {
                    failures.push(format!(
                        "{} n={n}: not certified under {} crashes",
                        resolved.label, args.budget
                    ));
                }
                certs.push((resolved.label, n, report));
            }
        }
    }

    // Pass 2: the crash game, swept over budgets 0..=K.
    let mut curves: Vec<CrashCurve> = Vec::new();
    for spec in &args.algs {
        let curve = force_crash_curve(registry, spec, &args.ns, &ks, &args.cfg)
            .map_err(|e| e.to_string())?;
        for row in &curve.rows {
            for cell in &row.cells {
                if !cell.completed() {
                    failures.push(format!(
                        "{} n={} k={}: no strategy completed ({})",
                        curve.algorithm,
                        cell.n,
                        row.budget,
                        cell.errors.join("; ")
                    ));
                    continue;
                }
                for (m, model) in RMR_MODELS.iter().enumerate() {
                    if cell.forced[m] < cell.greedy[m] {
                        failures.push(format!(
                            "{} n={} k={} {model}: forced {} below greedy {}",
                            curve.algorithm, cell.n, row.budget, cell.forced[m], cell.greedy[m]
                        ));
                    }
                }
            }
        }
        curves.push(curve);
    }

    if !args.quiet {
        if !certs.is_empty() {
            let mut rows: Vec<Vec<String>> = vec![[
                "algorithm",
                "n",
                "budget",
                "states",
                "depth",
                "recoverable",
                "witness",
            ]
            .iter()
            .map(ToString::to_string)
            .collect()];
            for (label, n, report) in &certs {
                rows.push(vec![
                    label.clone(),
                    n.to_string(),
                    report.budget.to_string(),
                    report.states.to_string(),
                    report.depth.to_string(),
                    if report.violation.is_some() {
                        "NO"
                    } else if report.certified_recoverable() {
                        "yes"
                    } else {
                        "?" // truncated: nothing was proved
                    }
                    .to_string(),
                    report.violation.as_ref().map_or_else(String::new, |v| {
                        format!("{} steps, {} crashes", v.picks.len(), v.crashes())
                    }),
                ]);
            }
            let cols = rows[0].len();
            print!(
                "{}",
                exclusion_workload::report::text_table(&rows, &[0, cols - 1])
            );
        }
        let mut rows: Vec<Vec<String>> = vec![[
            "algorithm",
            "n",
            "k",
            "steps",
            "inj",
            "rmr-cc",
            "cc-adapt",
            "cc-greedy",
            "rmr-dsm",
            "winner",
            "note",
        ]
        .iter()
        .map(ToString::to_string)
        .collect()];
        for curve in &curves {
            for row in &curve.rows {
                for cell in &row.cells {
                    rows.push(vec![
                        curve.algorithm.clone(),
                        cell.n.to_string(),
                        row.budget.to_string(),
                        cell.steps.to_string(),
                        cell.injected.to_string(),
                        cell.forced[RMR_CC].to_string(),
                        cell.adaptive[RMR_CC].to_string(),
                        cell.greedy[RMR_CC].to_string(),
                        cell.forced[1].to_string(),
                        cell.winner[RMR_CC].to_string(),
                        cell.errors.join("; "),
                    ]);
                }
            }
        }
        let cols = rows[0].len();
        print!(
            "{}",
            exclusion_workload::report::text_table(&rows, &[0, cols - 2, cols - 1])
        );
        eprintln!(
            "crash-certified {} cells / forced {} games in {:.1} ms",
            certs.len(),
            curves
                .iter()
                .map(|c| c.rows.iter().map(|r| r.cells.len()).sum::<usize>())
                .sum::<usize>(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    if let Some(path) = &args.json {
        emit(path, "JSON report", &crash_json(&args, &certs, &curves))?;
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Hand-rolled JSON for the crash report, matching the house style.
/// Witness traces are summarized by length and crash count; replay them
/// via the library API (`CrashForcedRun::replay_artifacts`,
/// `CrashCounterexample::replay_artifacts`) instead.
fn crash_json(
    args: &CrashArgs,
    certs: &[(String, usize, exclusion_explore::CrashReport)],
    curves: &[exclusion_bound::CrashCurve],
) -> String {
    use exclusion_bound::{rmr_models_json, RMR_CC, RMR_MODELS};
    use exclusion_explore::report::json_escape;

    let mut out = format!(
        "{{\"schema\":\"exclusion-crash/v1\",\"passages\":{},\"seed\":{},\"budget\":{},\"grid\":{:?},\"certify\":[",
        args.cfg.passages, args.cfg.seed, args.budget, args.ns
    );
    for (i, (label, n, report)) in certs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let witness = report.violation.as_ref().map_or_else(
            || "null".into(),
            |v| {
                format!(
                    "{{\"steps\":{},\"crashes\":{}}}",
                    v.picks.len(),
                    v.crashes()
                )
            },
        );
        let _ = write!(
            out,
            "{{\"algorithm\":\"{}\",\"n\":{n},\"budget\":{},\"states\":{},\"edges\":{},\"depth\":{},\"certified\":{},\"violation\":{witness}}}",
            json_escape(label),
            report.budget,
            report.states,
            report.edges,
            report.depth,
            report.certified_recoverable(),
        );
    }
    out.push_str("],\"curves\":[");
    for (i, curve) in curves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algorithm\":\"{}\",\"rows\":[",
            json_escape(&curve.algorithm)
        );
        for (j, row) in curve.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"crashes\":{},\"fits\":{{", row.budget);
            for (m, model) in RMR_MODELS.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{model}\":{{\"c\":{:.6},\"r2\":{:.6}}}",
                    if m > 0 { "," } else { "" },
                    row.fits[m].c,
                    row.fits[m].r2
                );
            }
            out.push_str("},\"cells\":[");
            for (c, cell) in row.cells.iter().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                let errors = cell
                    .errors
                    .iter()
                    .map(|e| format!("\"{}\"", json_escape(e)))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    out,
                    "{{\"n\":{},\"steps\":{},\"injected\":{},\"forced\":{{{}}},\"adaptive\":{{{}}},\"greedy\":{{{}}},\"winner\":\"{}\",\"errors\":[{errors}]}}",
                    cell.n,
                    cell.steps,
                    cell.injected,
                    rmr_models_json(&cell.forced),
                    rmr_models_json(&cell.adaptive),
                    rmr_models_json(&cell.greedy),
                    cell.winner[RMR_CC],
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

const TRACE_USAGE: &str = "\
workload trace — run one scenario with the structured probe attached
and export a Chrome trace-event JSON (load it at https://ui.perfetto.dev)

USAGE:
    workload trace [OPTIONS]

OPTIONS:
    --alg A              algorithm spec (default: peterson)
    --sched S            scheduler spec; `fanlynch` (aliases: adaptive,
                         fan-lynch) is constructed directly so its
                         internal awareness-merge / harvest / reveal
                         events are captured too (default: fanlynch)
    --n N                processes (default: 8)
    --passages P         passages per process (default: 1)
    --seed S             scheduler seed / adaptive tie-break (default: 1)
    --max-steps N        step budget (default: 50000000)
    --out PATH           write the Chrome trace JSON (`-` for stdout,
                         the default)
    --metrics PATH       also write the aggregated metrics JSON
    --progress every:N   print a status line to stderr every N events
                         (`--progress=every:N` also parses; 0 = off)
    --help               this text

The exported trace is a pure function of (alg, sched, n, passages,
seed): two identical invocations emit byte-identical JSON.
";

struct TraceArgs {
    alg: String,
    sched: String,
    n: usize,
    passages: usize,
    seed: u64,
    max_steps: usize,
    out: String,
    metrics: Option<String>,
    every: u64,
}

fn parse_progress(v: &str) -> Result<u64, String> {
    let v = v.strip_prefix("every:").unwrap_or(v);
    v.parse().map_err(|e| format!("--progress: {e}"))
}

fn parse_trace_args(argv: &[String]) -> Result<Option<TraceArgs>, String> {
    let mut args = TraceArgs {
        alg: "peterson".into(),
        sched: "fanlynch".into(),
        n: 8,
        passages: 1,
        seed: 1,
        max_steps: 50_000_000,
        out: "-".into(),
        metrics: None,
        every: 0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--alg" => args.alg = value()?,
            "--sched" => args.sched = value()?,
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--passages" => {
                args.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--max-steps" => {
                args.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--out" => args.out = value()?,
            "--metrics" => args.metrics = Some(value()?),
            "--progress" => args.every = parse_progress(&value()?)?,
            "--help" | "-h" => {
                print!("{TRACE_USAGE}");
                return Ok(None);
            }
            other => match other.strip_prefix("--progress=") {
                Some(v) => args.every = parse_progress(v)?,
                None => return Err(format!("unknown flag `{other}` (try trace --help)")),
            },
        }
    }
    if args.passages == 0 {
        return Err("--passages must be positive".into());
    }
    Ok(Some(args))
}

/// The trace subcommand's composite sink: always collects (for the
/// Chrome export), optionally aggregates metrics, optionally prints
/// progress — one probe handed to the whole run.
struct TraceSink {
    collect: exclusion_trace::CollectingProbe,
    metrics: Option<exclusion_trace::Metrics>,
    progress: exclusion_trace::Progress,
}

impl exclusion_trace::Probe for TraceSink {
    fn record(&mut self, ev: &exclusion_trace::TraceEvent) {
        self.collect.record(ev);
        if let Some(m) = &mut self.metrics {
            m.record(ev);
        }
        self.progress.record(ev);
    }
}

fn run_trace(argv: &[String]) -> Result<(), String> {
    use exclusion_trace::{Probe as _, SharedProbe, SpanScope, TraceEvent};

    let Some(args) = parse_trace_args(argv)? else {
        return Ok(());
    };
    let mut sink = TraceSink {
        collect: exclusion_trace::CollectingProbe::new(),
        metrics: args
            .metrics
            .as_ref()
            .map(|_| exclusion_trace::Metrics::new()),
        progress: exclusion_trace::Progress::new(args.every),
    };
    // The adaptive adversary is special-cased by name: the registry's
    // erased builder cannot carry a probe, so `fanlynch` is constructed
    // directly and shares the sink with the pricing driver — that is
    // what puts awareness-merge/harvest/reveal events in the trace.
    let fanlynch = matches!(args.sched.as_str(), "fanlynch" | "adaptive" | "fan-lynch");
    sink.record(&TraceEvent::SpanStart {
        scope: SpanScope::Run,
        tag: 0,
    });
    let start = std::time::Instant::now();
    let (steps, sc, cc, dsm) = if fanlynch {
        let resolved = AlgorithmRegistry::global()
            .resolve_str(&args.alg, args.n)
            .map_err(|e| e.to_string())?;
        let alg = resolved.automaton;
        let cell = std::cell::RefCell::new(&mut sink as &mut dyn exclusion_trace::Probe);
        let probe = SharedProbe::new(&cell);
        let mut sched = exclusion_bound::AdaptiveAdversary::new(args.seed).with_probe(probe);
        let priced = exclusion_cost::run_priced_probed(
            &exclusion_shmem::dynamic::DynRef(alg.as_ref()),
            &mut sched,
            args.passages,
            args.max_steps,
            probe,
        )
        .map_err(|e| e.to_string())?;
        (
            priced.steps,
            priced.sc.total(),
            priced.cc.total(),
            priced.dsm.total(),
        )
    } else {
        let sched = SchedSpec::parse(&args.sched).map_err(|e| e.to_string())?;
        let scenario = Scenario::builder(args.alg.clone(), args.n)
            .passages(args.passages)
            .sched(sched)
            .seeds([args.seed])
            .max_steps(args.max_steps)
            .build()
            .map_err(|e| e.to_string())?;
        let record = exclusion_workload::run_probed(&scenario, args.seed, &mut sink);
        if let Some(e) = record.error {
            return Err(e);
        }
        (record.steps, record.sc, record.cc, record.dsm)
    };
    sink.record(&TraceEvent::SpanEnd {
        scope: SpanScope::Run,
        tag: 0,
        wall_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    });
    eprintln!(
        "traced {} {} n={} seed={}: {} steps / {} events | sc {sc} cc {cc} dsm {dsm}",
        args.alg,
        args.sched,
        args.n,
        args.seed,
        steps,
        sink.collect.len(),
    );
    emit(
        &args.out,
        "Chrome trace",
        &exclusion_trace::chrome_trace(sink.collect.events()),
    )?;
    if let Some(path) = &args.metrics {
        let m = sink.metrics.as_ref().expect("metrics were requested");
        emit(path, "metrics JSON", &exclusion_trace::metrics_json(m))?;
    }
    Ok(())
}

const SERVE_USAGE: &str = "\
workload serve — drive an open stream of lock requests through one
algorithm as a deterministic discrete-event loop, with bounded-memory
live percentiles

USAGE:
    workload serve [OPTIONS]

OPTIONS:
    --alg A              algorithm spec (default: peterson)
    --n N                processes = max requests in flight (default: 4)
    --sched S            scheduler spec from the registry
                         (default: round-robin)
    --arrivals M         arrival model spec: steady[:gap=G] |
                         poisson[:rate=R] | bursty[:size=B,gap=G] |
                         diurnal[:period=P,peak=R,trough=R]
                         (default: poisson:rate=0.25)
    --requests N         stream length (default: 1000000)
    --deadline D         queue patience in ticks; a request waiting
                         longer abandons, and is counted
                         (default: wait forever)
    --ring R             pending-ring capacity, 0 = 2n (default: 0)
    --stripe S           requests per shard (default: 8192)
    --workers W          worker threads, 0 = one per core (default: 0)
    --seed S             base seed (default: 1)
    --max-steps N        step budget per stripe (default: 50000000)
    --no-cache           disable the solo-admission cache
    --json PATH          write the JSON report (`-` for stdout,
                         the default)
    --progress every:N   print a status line to stderr every N events
                         (0 = off)
    --quiet              suppress the stderr summary
    --help               this text

The report is a pure function of every option above except --workers
and --progress: byte-identical across worker counts and repeated runs.
Failed stripes (step budget, misbehaving scheduler) are reported in
the JSON and exit nonzero; they never panic.
";

struct ServeArgs {
    alg: String,
    n: usize,
    sched: String,
    arrivals: String,
    requests: u64,
    deadline: Option<u64>,
    ring: usize,
    stripe: u64,
    workers: usize,
    seed: u64,
    max_steps: u64,
    cache: bool,
    json: String,
    every: u64,
    quiet: bool,
}

fn parse_serve_args(argv: &[String]) -> Result<Option<ServeArgs>, String> {
    let mut args = ServeArgs {
        alg: "peterson".into(),
        n: 4,
        sched: "round-robin".into(),
        arrivals: "poisson:rate=0.25".into(),
        requests: 1_000_000,
        deadline: None,
        ring: 0,
        stripe: 8192,
        workers: 0,
        seed: 1,
        max_steps: 50_000_000,
        cache: true,
        json: "-".into(),
        every: 0,
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--alg" => args.alg = value()?,
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--sched" => args.sched = value()?,
            "--arrivals" => args.arrivals = value()?,
            "--requests" => {
                args.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--deadline" => {
                args.deadline = Some(value()?.parse().map_err(|e| format!("--deadline: {e}"))?);
            }
            "--ring" => args.ring = value()?.parse().map_err(|e| format!("--ring: {e}"))?,
            "--stripe" => args.stripe = value()?.parse().map_err(|e| format!("--stripe: {e}"))?,
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--max-steps" => {
                args.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--no-cache" => args.cache = false,
            "--json" => args.json = value()?,
            "--progress" => args.every = parse_progress(&value()?)?,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{SERVE_USAGE}");
                return Ok(None);
            }
            other => match other.strip_prefix("--progress=") {
                Some(v) => args.every = parse_progress(v)?,
                None => return Err(format!("unknown flag `{other}` (try serve --help)")),
            },
        }
    }
    if args.stripe == 0 {
        return Err("--stripe must be positive".into());
    }
    Ok(Some(args))
}

fn run_serve(argv: &[String]) -> Result<(), String> {
    use exclusion_serve::{ServeJob, ServeOptions};

    let Some(args) = parse_serve_args(argv)? else {
        return Ok(());
    };
    // Registry schedulers are built per stripe; closed-scenario
    // policies that size themselves by passages (`sequential`) get the
    // stripe length as the hint — one serve stripe admits at most
    // `stripe` requests.
    let resolved = SchedulerRegistry::global()
        .resolve_str(&args.sched, args.n)
        .map_err(|e| e.to_string())?;
    let passages_hint = usize::try_from(args.stripe).unwrap_or(usize::MAX);
    let job = ServeJob::new(&args.alg, args.n, args.requests)
        .map_err(|e| e.to_string())?
        .arrivals(&args.arrivals)
        .map_err(|e| e.to_string())?
        .scheduler(resolved.label.clone(), move |seed| {
            resolved.build(passages_hint, seed)
        });
    let opts = ServeOptions {
        workers: args.workers,
        stripe: args.stripe,
        ring: args.ring,
        deadline: args.deadline,
        seed: args.seed,
        max_steps: args.max_steps,
        cache: args.cache,
        progress: args.every,
    };
    let start = std::time::Instant::now();
    let report = exclusion_serve::serve(&job, &opts);
    let elapsed = start.elapsed().as_secs_f64();
    if !args.quiet {
        #[allow(clippy::cast_precision_loss)]
        let rate = |x: u64| x as f64 / elapsed.max(1e-9);
        eprintln!(
            "served {} of {} requests ({} abandoned, {} unserved) on {} {} under {} [{}]",
            report.completed,
            report.requests,
            report.abandoned,
            report.unserved,
            report.algorithm,
            format_args!("n={}", report.n),
            report.scheduler,
            report.arrivals,
        );
        eprintln!(
            "  {} steps in {:.1} ms wall ({:.0} requests/s, {:.0} steps/s) | cache {} hits / {} misses",
            report.steps,
            elapsed * 1e3,
            rate(report.completed),
            rate(report.steps),
            report.cache_hits,
            report.cache_misses,
        );
        eprintln!(
            "  latency ticks p50 {} p90 {} p99 {} p999 {} | throughput {:.4}/tick | abandonment {:.4}",
            report.latency.quantile(0.50),
            report.latency.quantile(0.90),
            report.latency.quantile(0.99),
            report.latency.quantile(0.999),
            report.throughput(),
            report.abandonment_rate(),
        );
    }
    emit(&args.json, "serve report", &report.to_json())?;
    if !report.errors.is_empty() {
        return Err(format!(
            "{} stripes failed ({})",
            report.errors.len(),
            report.errors[0]
        ));
    }
    Ok(())
}

const HWBENCH_USAGE: &str = "\
workload hwbench — formal-vs-hardware differential: generate one
arrival schedule, run it through the simulated registry automaton
(priced under SC/CC/DSM) and through the matching exclusion-spin lock
on real atomics, and co-report simulated RMR against measured
nanoseconds

USAGE:
    workload hwbench [OPTIONS]

OPTIONS:
    --algs A,B,...       registry specs with hardware twins
                         (default: mcs,clh,ticket)
    --arrivals M,N,...   arrival model specs
                         (default: steady:gap=64,bursty)
    --n N                processes = threads (default: 4)
    --requests R         requests (passages) per process (default: 8)
    --seed S             seed for seeded arrival models (default: 1)
    --ns-per-tick NS     hardware pacing in ns per arrival tick
                         (default: 200)
    --json PATH          write the JSON report (`-` for stdout,
                         the default)
    --quiet              suppress the stderr summary
    --help               this text

Exits nonzero if any scenario's two legs disagree on per-thread
passage counts. All row fields are deterministic per scenario except
elapsed_ns / mean_wait_ns / max_wait_ns, which are measurements —
exclude them from byte-identity comparisons.
";

struct HwbenchArgs {
    algs: Vec<String>,
    arrivals: Vec<String>,
    n: usize,
    requests: usize,
    seed: u64,
    ns_per_tick: u64,
    json: String,
    quiet: bool,
}

fn parse_hwbench_args(argv: &[String]) -> Result<Option<HwbenchArgs>, String> {
    let mut args = HwbenchArgs {
        algs: vec!["mcs".into(), "clh".into(), "ticket".into()],
        arrivals: vec!["steady:gap=64".into(), "bursty".into()],
        n: 4,
        requests: 8,
        seed: 1,
        ns_per_tick: 200,
        json: "-".into(),
        quiet: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--algs" => args.algs = split_specs(&value()?),
            "--arrivals" => args.arrivals = split_specs(&value()?),
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--requests" => {
                args.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ns-per-tick" => {
                args.ns_per_tick = value()?
                    .parse()
                    .map_err(|e| format!("--ns-per-tick: {e}"))?;
            }
            "--json" => args.json = value()?,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{HWBENCH_USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try hwbench --help)")),
        }
    }
    if args.n == 0 || args.requests == 0 {
        return Err("--n and --requests must be positive".into());
    }
    Ok(Some(args))
}

fn run_hwbench(argv: &[String]) -> Result<(), String> {
    use exclusion_workload::hwbench::{run_scenario, HwScenario};

    let Some(args) = parse_hwbench_args(argv)? else {
        return Ok(());
    };
    let mut rows = Vec::new();
    for alg in &args.algs {
        for arrivals in &args.arrivals {
            let row = run_scenario(&HwScenario {
                alg: alg.clone(),
                arrivals: arrivals.clone(),
                n: args.n,
                requests_per_process: args.requests,
                seed: args.seed,
                ns_per_tick: args.ns_per_tick,
            })
            .map_err(|e| format!("{alg} under {arrivals}: {e}"))?;
            if !args.quiet {
                eprintln!(
                    "{} under {} n={}: sim {} steps, rmr/passage {:.2}, dsm {} | hw {} in {:.2} ms (mean wait {} ns) | {}",
                    row.alg,
                    row.arrivals,
                    row.n,
                    row.sim.steps,
                    row.sim.rmr_per_passage(),
                    row.sim.dsm,
                    row.hw.lock,
                    row.hw.elapsed_ns as f64 / 1e6,
                    row.hw.mean_wait_ns,
                    if row.agree { "legs agree" } else { "LEGS DISAGREE" },
                );
            }
            rows.push(row);
        }
    }
    let mut json = String::from("{\"schema\":\"exclusion-hwbench/v1\",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&row.to_json());
    }
    json.push_str("]}");
    emit(&args.json, "hwbench report", &json)?;
    let disagreements = rows.iter().filter(|r| !r.agree).count();
    if disagreements > 0 {
        return Err(format!(
            "{disagreements} scenarios disagree between simulation and hardware"
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explore") {
        return run_explore(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bound") {
        return run_bound(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("crash") {
        return run_crash(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("trace") {
        return run_trace(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return run_serve(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("hwbench") {
        return run_hwbench(&argv[1..]);
    }
    let Some(args) = parse_args(&argv)? else {
        return Ok(());
    };
    let scenarios = build_grid(&args)?;
    let jobs: usize = scenarios.iter().map(|s| s.effective_seeds().len()).sum();
    if !args.quiet {
        eprintln!(
            "sweeping {} scenarios / {} runs on {} threads ...",
            scenarios.len(),
            jobs,
            if args.threads == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            } else {
                args.threads
            }
        );
    }
    let start = std::time::Instant::now();
    let report = sweep(
        &scenarios,
        &SweepOptions {
            threads: args.threads,
            record: args.record,
            metrics: args.metrics.is_some(),
        },
    );
    let elapsed = start.elapsed();
    if !args.quiet {
        print!("{}", report.to_text());
        let busy_ns: u64 = report.records.iter().map(|r| r.wall_ns).sum();
        #[allow(clippy::cast_precision_loss)]
        let throughput = report.records.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "swept {} runs in {:.1} ms wall ({throughput:.0} runs/s, {:.1} ms of worker time, {} pricing)",
            report.records.len(),
            elapsed.as_secs_f64() * 1e3,
            busy_ns as f64 / 1e6,
            if args.record { "replay" } else { "streaming" },
        );
    }
    if let Some(path) = &args.json {
        emit(path, "JSON report", &report.to_json())?;
    }
    if let Some(path) = &args.csv {
        emit(path, "CSV report", &report.to_csv())?;
    }
    if let Some(path) = &args.metrics {
        let m = report.metrics.as_ref().expect("metrics were requested");
        emit(path, "metrics JSON", &exclusion_trace::metrics_json(m))?;
    }
    let failures: usize = report.summaries.iter().map(|s| s.failures).sum();
    if failures > 0 {
        return Err(format!("{failures} runs exhausted their step budget"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("workload: {msg}");
            ExitCode::FAILURE
        }
    }
}
