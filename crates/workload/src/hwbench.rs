//! The formal-vs-hardware differential harness: one arrival schedule,
//! two executions.
//!
//! A [`HwScenario`] names a registry algorithm, an arrival model
//! (`exclusion_serve`'s registry), a process count and a per-process
//! request count. [`run_scenario`] then executes the scenario twice:
//!
//! * the **simulated leg** ([`run_sim`]) admits processes into the
//!   registry automaton at their arrival ticks, interleaves the
//!   in-flight ones round-robin, and prices the run under the SC, CC
//!   and DSM models — crash-free CC *is* the RMR cost of the
//!   cache-coherent model, so `cc / passages` is the simulated RMR per
//!   passage;
//! * the **hardware leg** ([`run_hw`]) replays the *same* per-thread
//!   arrival lanes against the matching `exclusion_spin` lock on real
//!   atomics ([`exclusion_spin::paced::paced_run`]), recording the
//!   acquisition order the silicon produced and wall-clock timings.
//!
//! The two legs must agree on the observable contract — per-thread
//! passage counts (acquisition-order multisets) and total passages —
//! while the *costs* are deliberately different currencies: simulated
//! remote references on one side, measured nanoseconds on the other.
//! `BENCH_hw.json` co-reports both, which is where the O(1)-RMR
//! queue-lock story meets the Ω(n log n) register-only boundary on
//! actual hardware.
//!
//! Wall-clock fields (`elapsed_ns`, wait statistics) are measurements,
//! not reproducible artifacts: everything else in a row is
//! deterministic for a given scenario, and byte-identity comparisons
//! must exclude the timing fields.

use exclusion_cost::CostTracker;
use exclusion_mutex::AlgorithmRegistry;
use exclusion_serve::arrival::ArrivalRegistry;
use exclusion_shmem::dynamic::DynRef;
use exclusion_shmem::{CritKind, ProcessId, RunError, System};
use exclusion_spin::paced::paced_run;
use exclusion_spin::{
    ClhLock, DekkerTreeLock, McsLock, PetersonTreeLock, RawLock, TasLock, TicketLock, TtasLock,
};

/// One differential scenario: an algorithm × arrival model × size.
#[derive(Clone, Debug)]
pub struct HwScenario {
    /// Algorithm spec (a standard-registry name, e.g. `mcs`).
    pub alg: String,
    /// Arrival-model spec (e.g. `steady:gap=64`).
    pub arrivals: String,
    /// Processes / threads.
    pub n: usize,
    /// Requests (passages) per process.
    pub requests_per_process: usize,
    /// Seed for seeded arrival models.
    pub seed: u64,
    /// Hardware pacing: nanoseconds per arrival tick.
    pub ns_per_tick: u64,
}

/// The simulated leg's outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimLeg {
    /// Automaton steps executed.
    pub steps: usize,
    /// Total state-change (SC) cost.
    pub sc: usize,
    /// Total cache-coherent cost — crash-free, this is the RMR-CC cost.
    pub cc: usize,
    /// Total distributed-shared-memory cost.
    pub dsm: usize,
    /// Completed passages (equals the total request count).
    pub passages: usize,
    /// Critical-section entry order, as process indices.
    pub order: Vec<usize>,
}

impl SimLeg {
    /// Simulated RMR (cache-coherent remote references) per passage —
    /// the quantity whose flatness across `n` certifies a local-spin
    /// lock.
    #[must_use]
    pub fn rmr_per_passage(&self) -> f64 {
        if self.passages == 0 {
            0.0
        } else {
            self.cc as f64 / self.passages as f64
        }
    }
}

/// The hardware leg's outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HwLeg {
    /// The `exclusion_spin` lock that ran.
    pub lock: String,
    /// Completed passages.
    pub passages: usize,
    /// Acquisition order, as thread indices.
    pub order: Vec<usize>,
    /// Total wall-clock in nanoseconds (measurement; not reproducible).
    pub elapsed_ns: u64,
    /// Mean arrival-to-entry wait in nanoseconds.
    pub mean_wait_ns: u64,
    /// Worst arrival-to-entry wait in nanoseconds.
    pub max_wait_ns: u64,
}

/// One completed differential row: both legs plus the agreement
/// verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HwRow {
    /// The scenario's algorithm spec.
    pub alg: String,
    /// The scenario's resolved arrival label.
    pub arrivals: String,
    /// Processes / threads.
    pub n: usize,
    /// The simulated leg.
    pub sim: SimLeg,
    /// The hardware leg.
    pub hw: HwLeg,
    /// Whether per-thread passage counts and totals agree between the
    /// legs.
    pub agree: bool,
}

impl HwRow {
    /// One JSON object per row. Deterministic for a given scenario
    /// except the `elapsed_ns` / `*_wait_ns` measurement fields —
    /// byte-identity comparisons must exclude those.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"alg\":{:?},\"arrivals\":{:?},\"n\":{},\"agree\":{},\
             \"sim\":{{\"steps\":{},\"sc\":{},\"cc\":{},\"dsm\":{},\"passages\":{},\
             \"rmr_per_passage\":{:.4}}},\
             \"hw\":{{\"lock\":{:?},\"passages\":{},\"elapsed_ns\":{},\
             \"mean_wait_ns\":{},\"max_wait_ns\":{}}}}}",
            self.alg,
            self.arrivals,
            self.n,
            self.agree,
            self.sim.steps,
            self.sim.sc,
            self.sim.cc,
            self.sim.dsm,
            self.sim.passages,
            self.sim.rmr_per_passage(),
            self.hw.lock,
            self.hw.passages,
            self.hw.elapsed_ns,
            self.hw.mean_wait_ns,
            self.hw.max_wait_ns,
        )
    }
}

/// Errors a differential run can produce.
#[derive(Debug)]
pub enum HwError {
    /// The algorithm or arrival spec did not resolve.
    Spec(String),
    /// The algorithm has no hardware twin in `exclusion_spin`.
    NoHardwareTwin(String),
    /// The simulated leg did not finish within its step budget.
    Run(RunError),
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Spec(e) => write!(f, "{e}"),
            HwError::NoHardwareTwin(alg) => {
                write!(f, "`{alg}` has no hardware twin in exclusion-spin")
            }
            HwError::Run(e) => write!(f, "simulated leg: {e}"),
        }
    }
}

impl std::error::Error for HwError {}

/// The hardware twin of a registry algorithm name, if it has one.
///
/// The composable queue locks map to their atomics implementations;
/// the `-sim` spellings map to the same twins, and the register-only
/// tournament entries map to the tree locks.
#[must_use]
pub fn hardware_twin(alg: &str, threads: usize) -> Option<Box<dyn RawLock>> {
    let canonical = alg.split(':').next().unwrap_or(alg);
    Some(match canonical {
        "mcs" | "mcs-sim" => Box::new(McsLock::new(threads)) as Box<dyn RawLock>,
        "clh" | "clh-sim" => Box::new(ClhLock::new(threads)),
        "ticket" | "ticket-sim" => Box::new(TicketLock::new(threads)),
        "tas" | "tas-sim" => Box::new(TasLock::new(threads)),
        "ttas" | "ttas-sim" => Box::new(TtasLock::new(threads)),
        "peterson" => Box::new(PetersonTreeLock::new(threads)),
        "dekker-tree" => Box::new(DekkerTreeLock::new(threads)),
        _ => return None,
    })
}

/// Expands an arrival spec into per-process lanes: one shared stream of
/// `n × requests_per_process` arrival ticks, request `j` assigned to
/// process `j mod n` — every process gets the same number of requests,
/// interleaved the way the model emits them.
///
/// # Errors
///
/// [`HwError::Spec`] if the arrival spec does not resolve.
pub fn arrival_lanes(
    arrivals: &str,
    n: usize,
    requests_per_process: usize,
    seed: u64,
) -> Result<(String, Vec<Vec<u64>>), HwError> {
    let resolved = ArrivalRegistry::global()
        .resolve_str(arrivals, n)
        .map_err(|e| HwError::Spec(e.to_string()))?;
    let mut model = resolved.build(seed);
    let mut lanes = vec![Vec::with_capacity(requests_per_process); n];
    let mut clock = 0u64;
    for j in 0..n * requests_per_process {
        // The serve engine's non-decreasing clamp, reproduced.
        clock = clock.max(model.next_arrival());
        lanes[j % n].push(clock);
    }
    Ok((resolved.label, lanes))
}

/// Step budget for the simulated leg, scaled to the workload.
fn sim_step_budget(n: usize, total_requests: usize) -> usize {
    50_000 + total_requests * n * 200
}

/// Runs the simulated leg: admits each process into the automaton at
/// its arrival ticks, steps the in-flight set round-robin (one step =
/// one tick), fast-forwards idle gaps, and prices the whole run.
///
/// # Errors
///
/// [`HwError::Spec`] if the algorithm does not resolve;
/// [`HwError::Run`] if the run exceeds its step budget.
pub fn run_sim(alg: &str, n: usize, lanes: &[Vec<u64>]) -> Result<SimLeg, HwError> {
    let resolved = AlgorithmRegistry::global()
        .resolve_str(alg, n)
        .map_err(|e| HwError::Spec(e.to_string()))?;
    let automaton = DynRef(resolved.automaton.as_ref());
    let mut sys = System::new(&automaton);
    let mut tracker = CostTracker::new(&automaton);

    let total: usize = lanes.iter().map(Vec::len).sum();
    let budget = sim_step_budget(n, total);
    let mut next_req = vec![0usize; n];
    let mut active = vec![false; n];
    let mut order = Vec::with_capacity(total);
    let mut completed = 0usize;
    let mut tick = 0u64;
    let mut rr = 0usize;

    while completed < total {
        for p in 0..n {
            if !active[p] && lanes[p].get(next_req[p]).is_some_and(|&a| a <= tick) {
                active[p] = true;
            }
        }
        let Some(p) = (0..n).map(|k| (rr + k) % n).find(|&p| active[p]) else {
            // Nobody in flight: fast-forward to the next arrival.
            tick = (0..n)
                .filter_map(|p| lanes[p].get(next_req[p]).copied())
                .min()
                .expect("requests remain");
            continue;
        };
        if tracker.steps() >= budget {
            return Err(HwError::Run(RunError {
                limit: budget,
                completed,
                processes: n,
            }));
        }
        let pid = ProcessId::new(p);
        let done = sys.step(pid);
        tracker.observe(&done);
        match done.step.crit_kind() {
            Some(CritKind::Enter) => order.push(p),
            Some(CritKind::Rem) => {
                active[p] = false;
                next_req[p] += 1;
                completed += 1;
            }
            _ => {}
        }
        rr = (p + 1) % n;
        tick += 1;
    }

    let steps = tracker.steps();
    let (sc, cc, dsm) = tracker.into_reports();
    Ok(SimLeg {
        steps,
        sc: sc.total(),
        cc: cc.total(),
        dsm: dsm.total(),
        passages: completed,
        order,
    })
}

/// Runs the hardware leg: the same lanes, paced onto a real
/// `exclusion_spin` lock.
///
/// # Errors
///
/// [`HwError::NoHardwareTwin`] if the algorithm has no atomics
/// implementation.
pub fn run_hw(alg: &str, n: usize, lanes: &[Vec<u64>], ns_per_tick: u64) -> Result<HwLeg, HwError> {
    let lock = hardware_twin(alg, n).ok_or_else(|| HwError::NoHardwareTwin(alg.to_string()))?;
    let report = paced_run(lock.as_ref(), lanes, ns_per_tick);
    let waits: Vec<u64> = report.acquisitions.iter().map(|a| a.wait_ns).collect();
    let mean_wait_ns = if waits.is_empty() {
        0
    } else {
        waits.iter().sum::<u64>() / waits.len() as u64
    };
    Ok(HwLeg {
        lock: report.lock.clone(),
        passages: report.acquisitions.len(),
        order: report.order(),
        elapsed_ns: report.elapsed_ns,
        mean_wait_ns,
        max_wait_ns: waits.into_iter().max().unwrap_or(0),
    })
}

/// Per-thread passage counts — the acquisition-order multiset the two
/// legs must agree on.
#[must_use]
pub fn passage_counts(order: &[usize], n: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n];
    for &tid in order {
        counts[tid] += 1;
    }
    counts
}

/// Runs both legs of a scenario and checks agreement.
///
/// # Errors
///
/// As [`arrival_lanes`], [`run_sim`] and [`run_hw`].
pub fn run_scenario(sc: &HwScenario) -> Result<HwRow, HwError> {
    let (label, lanes) = arrival_lanes(&sc.arrivals, sc.n, sc.requests_per_process, sc.seed)?;
    let sim = run_sim(&sc.alg, sc.n, &lanes)?;
    let hw = run_hw(&sc.alg, sc.n, &lanes, sc.ns_per_tick)?;
    let agree = sim.passages == hw.passages
        && passage_counts(&sim.order, sc.n) == passage_counts(&hw.order, sc.n);
    Ok(HwRow {
        alg: sc.alg.clone(),
        arrivals: label,
        n: sc.n,
        sim,
        hw,
        agree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(alg: &str, arrivals: &str, n: usize) -> HwScenario {
        HwScenario {
            alg: alg.into(),
            arrivals: arrivals.into(),
            n,
            requests_per_process: 3,
            seed: 7,
            ns_per_tick: 50,
        }
    }

    #[test]
    fn lanes_are_balanced_and_non_decreasing() {
        let (label, lanes) = arrival_lanes("steady:gap=4", 3, 5, 0).unwrap();
        assert_eq!(label, "steady:gap=4");
        assert_eq!(lanes.len(), 3);
        for lane in &lanes {
            assert_eq!(lane.len(), 5);
            assert!(lane.windows(2).all(|w| w[0] <= w[1]));
        }
        // Steady gap 4 with requests interleaved round-robin.
        assert_eq!(lanes[0], [0, 12, 24, 36, 48]);
        assert_eq!(lanes[1], [4, 16, 28, 40, 52]);
    }

    #[test]
    fn sim_leg_completes_all_requests_for_every_queue_lock() {
        for alg in ["mcs", "clh", "ticket"] {
            let (_, lanes) = arrival_lanes("steady:gap=2", 3, 4, 0).unwrap();
            let sim = run_sim(alg, 3, &lanes).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert_eq!(sim.passages, 12, "{alg}");
            assert_eq!(sim.order.len(), 12, "{alg}");
            assert_eq!(passage_counts(&sim.order, 3), [4, 4, 4], "{alg}");
            assert!(sim.sc > 0 && sim.cc > 0, "{alg}");
        }
    }

    #[test]
    fn scenario_legs_agree_for_queue_locks_and_contrast_entries() {
        for alg in ["mcs", "clh", "ticket", "ttas-sim", "dekker-tree"] {
            for arrivals in ["steady:gap=8", "bursty:size=2,gap=16"] {
                let row = run_scenario(&scenario(alg, arrivals, 2))
                    .unwrap_or_else(|e| panic!("{alg} under {arrivals}: {e}"));
                assert!(row.agree, "{alg} under {arrivals}: legs disagree");
                assert_eq!(row.sim.passages, 6, "{alg} under {arrivals}");
                assert_eq!(row.hw.passages, 6, "{alg} under {arrivals}");
            }
        }
    }

    #[test]
    fn unknown_specs_and_missing_twins_error_cleanly() {
        assert!(matches!(
            run_scenario(&scenario("no-such-lock", "steady", 2)),
            Err(HwError::Spec(_))
        ));
        assert!(matches!(
            run_scenario(&scenario("bakery", "steady", 2)),
            Err(HwError::NoHardwareTwin(_))
        ));
        assert!(matches!(
            arrival_lanes("no-such-arrivals", 2, 1, 0),
            Err(HwError::Spec(_))
        ));
    }

    #[test]
    fn row_json_is_balanced_and_carries_both_costs() {
        let row = run_scenario(&scenario("mcs", "steady:gap=8", 2)).unwrap();
        let json = row.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"sim\"",
            "\"hw\"",
            "\"rmr_per_passage\"",
            "\"elapsed_ns\"",
            "\"dsm\"",
            "\"agree\":true",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn seeded_arrivals_reproduce_per_seed() {
        let a = arrival_lanes("poisson:rate=0.5", 4, 6, 42).unwrap();
        let b = arrival_lanes("poisson:rate=0.5", 4, 6, 42).unwrap();
        let c = arrival_lanes("poisson:rate=0.5", 4, 6, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.1, c.1);
    }
}
