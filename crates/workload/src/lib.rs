//! The adversarial scenario engine: contention workload generation and
//! parallel sharded cost sweeps.
//!
//! The paper's Ω(n log n) bound is a statement about what an *adversary*
//! — a scheduler — can force an algorithm to pay. This crate turns that
//! viewpoint into an engine:
//!
//! * [`Scenario`] describes one workload: an algorithm (a spec like
//!   `"dekker-tree"` or `"filter:levels=5"`, resolved against
//!   `exclusion_mutex`'s open `AlgorithmRegistry`), a process count, a
//!   passage target, a scheduling policy ([`SchedSpec`], resolved
//!   against this crate's [`SchedulerRegistry`] — including the greedy
//!   cost-maximizing adversary, the adaptive lower-bound adversary
//!   `fanlynch` from `exclusion-bound`, and burst/stagger arrival
//!   patterns), and a seed grid. Resolution happens once, at build
//!   time: the
//!   scenario carries live registry handles, and downstream crates can
//!   sweep their own registered algorithms and schedulers through
//!   [`ScenarioBuilder::build_with`];
//! * [`sweep`] runs a batch of scenarios sharded across worker threads,
//!   prices every run under the SC, CC and DSM cost models, and
//!   aggregates min/percentile/max/mean summaries — results are
//!   bit-identical for any thread count. By default each run is driven
//!   and priced in a *single streaming pass* (nothing recorded, nothing
//!   replayed); [`SweepOptions::record`] switches to the legacy
//!   record-then-replay engine, whose results are identical;
//! * [`SweepReport`] serializes to JSON, CSV or an aligned text table.
//!
//! The `workload` binary wraps all of this in a CLI.
//!
//! # Example
//!
//! Price the tournament lock under the greedy adversary and a random
//! seed grid, in parallel:
//!
//! ```
//! use exclusion_workload::{sweep, Scenario, SchedSpec, SweepOptions};
//!
//! let scenarios = vec![
//!     Scenario::builder("dekker-tree", 8)
//!         .sched(SchedSpec::greedy())
//!         .build()?,
//!     Scenario::builder("dekker-tree", 8)
//!         .sched(SchedSpec::random())
//!         .seeds(0..8)
//!         .build()?,
//! ];
//! let report = sweep(&scenarios, &SweepOptions::default());
//! let greedy = &report.summaries[0];
//! let random = &report.summaries[1];
//! // The adversary extracts at least as much SC cost as fair chance.
//! assert!(greedy.sc.max >= random.sc.max);
//! println!("{}", report.to_text());
//! # Ok::<(), exclusion_workload::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hwbench;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod schedreg;

pub use hwbench::{HwError, HwLeg, HwRow, HwScenario, SimLeg};
pub use report::JSON_SCHEMA;
pub use runner::{
    run_probed, sweep, ModelSummary, RunRecord, ScenarioSummary, SweepOptions, SweepReport,
};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioError, SchedSpec};
pub use schedreg::{ResolvedSched, SchedBuilder, SchedulerEntry, SchedulerInfo, SchedulerRegistry};
