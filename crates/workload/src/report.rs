//! Report serialization: JSON and CSV, hand-rolled (the build
//! environment cannot vendor serde) and deliberately schema-stable.

use std::fmt::Write as _;

use crate::runner::{ModelSummary, RunRecord, ScenarioSummary, SweepReport};

/// Schema tag stamped into every JSON report.
pub const JSON_SCHEMA: &str = "exclusion-workload/v1";

/// Renders `rows` (a header row followed by data rows) as an aligned
/// text table: columns listed in `left_aligned` are left-aligned, all
/// others right-aligned, cells separated by two spaces, a dashed rule
/// under the header, trailing whitespace trimmed. Shared by the sweep
/// summary ([`SweepReport::to_text`]) and the CLI's `explore` table so
/// the two cannot drift apart visually.
#[must_use]
pub fn text_table(rows: &[Vec<String>], left_aligned: &[usize]) -> String {
    let Some(header) = rows.first() else {
        return String::new();
    };
    let cols = header.len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| rows.iter().map(|r| r[c].chars().count()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            let pad = widths[c].saturating_sub(cell.chars().count());
            if left_aligned.contains(&c) {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

// One copy of the JSON escaping rules for the whole report stack.
use exclusion_explore::report::json_escape as esc;

fn model_json(out: &mut String, key: &str, m: &ModelSummary) {
    let _ = write!(
        out,
        "\"{key}\":{{\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{:.3}}}",
        m.min, m.p50, m.p90, m.p99, m.max, m.mean
    );
}

fn summary_json(out: &mut String, s: &ScenarioSummary) {
    let _ = write!(
        out,
        "{{\"scenario\":\"{}\",\"algorithm\":\"{}\",\"scheduler\":\"{}\",\
         \"n\":{},\"passages\":{},\"runs\":{},\"failures\":{},",
        esc(&s.scenario),
        esc(&s.algorithm),
        esc(&s.scheduler),
        s.n,
        s.passages,
        s.runs,
        s.failures
    );
    model_json(out, "sc", &s.sc);
    out.push(',');
    model_json(out, "cc", &s.cc);
    out.push(',');
    model_json(out, "dsm", &s.dsm);
    out.push('}');
}

fn record_json(out: &mut String, r: &RunRecord) {
    let _ = write!(
        out,
        "{{\"scenario\":\"{}\",\"algorithm\":\"{}\",\"scheduler\":\"{}\",\
         \"n\":{},\"passages\":{},\"seed\":{},\"steps\":{},\
         \"sc\":{},\"cc\":{},\"dsm\":{},\"sc_max_process\":{},\"error\":",
        esc(&r.scenario),
        esc(&r.algorithm),
        esc(&r.scheduler),
        r.n,
        r.passages,
        r.seed,
        r.steps,
        r.sc,
        r.cc,
        r.dsm,
        r.sc_max_process,
    );
    match &r.error {
        None => out.push_str("null"),
        Some(e) => {
            let _ = write!(out, "\"{}\"", esc(e));
        }
    }
    out.push('}');
}

impl SweepReport {
    /// The report as a single JSON document: schema tag, per-scenario
    /// summaries, and per-run records.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{JSON_SCHEMA}\",\"summaries\":[");
        for (i, s) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            summary_json(&mut out, s);
        }
        out.push_str("],\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            record_json(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// The per-run records as CSV (header + one line per run).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,algorithm,scheduler,n,passages,seed,steps,sc,cc,dsm,sc_max_process,error\n",
        );
        for r in &self.records {
            let err = r.error.as_deref().unwrap_or("");
            let quote = |s: &str| {
                if s.contains([',', '"', '\n']) {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.to_string()
                }
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                quote(&r.scenario),
                quote(&r.algorithm),
                quote(&r.scheduler),
                r.n,
                r.passages,
                r.seed,
                r.steps,
                r.sc,
                r.cc,
                r.dsm,
                r.sc_max_process,
                quote(err),
            );
        }
        out
    }

    /// A human-readable summary table (one line per scenario), for
    /// terminals and logs.
    #[must_use]
    pub fn to_text(&self) -> String {
        let header = [
            "scenario", "runs", "fail", "sc min", "sc p50", "sc p90", "sc p99", "sc max",
            "sc mean", "cc max", "dsm max",
        ];
        let mut rows: Vec<Vec<String>> = vec![header.iter().map(ToString::to_string).collect()];
        for s in &self.summaries {
            rows.push(vec![
                s.scenario.clone(),
                s.runs.to_string(),
                s.failures.to_string(),
                s.sc.min.to_string(),
                s.sc.p50.to_string(),
                s.sc.p90.to_string(),
                s.sc.p99.to_string(),
                s.sc.max.to_string(),
                format!("{:.1}", s.sc.mean),
                s.cc.max.to_string(),
                s.dsm.max.to_string(),
            ]);
        }
        text_table(&rows, &[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{sweep, SweepOptions};
    use crate::scenario::{Scenario, SchedSpec};

    fn small_report() -> SweepReport {
        let scenarios = vec![
            Scenario::builder("peterson", 3)
                .sched(SchedSpec::random())
                .seeds(0..3)
                .build()
                .unwrap(),
            Scenario::builder("peterson", 3)
                .sched(SchedSpec::greedy())
                .build()
                .unwrap(),
        ];
        sweep(&scenarios, &SweepOptions::default())
    }

    #[test]
    fn json_has_schema_and_balanced_structure() {
        let report = small_report();
        let json = report.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{JSON_SCHEMA}\"")));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"scenario\":").count(), 2 + 4);
        assert!(json.contains("\"error\":null"));
        // Deterministic serialization of a deterministic sweep.
        assert_eq!(json, small_report().to_json());
    }

    #[test]
    fn csv_has_one_line_per_record_plus_header() {
        let report = small_report();
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), report.records.len() + 1);
        assert!(csv.starts_with("scenario,algorithm,scheduler,"));
    }

    #[test]
    fn text_table_lists_every_scenario() {
        let report = small_report();
        let text = report.to_text();
        for s in &report.summaries {
            assert!(text.contains(&s.scenario));
        }
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
