//! The parallel batch runner: shards a scenario × seed grid across
//! worker threads, prices every run under all three cost models, and
//! aggregates per-scenario summaries.
//!
//! Pricing has two engines, selected by [`SweepOptions::record`]:
//!
//! * **streaming** (the default): each run is driven and priced in a
//!   single pass via `exclusion_cost::run_priced` — no execution is
//!   recorded, nothing is replayed;
//! * **record + replay** (the legacy path, kept for A/B measurement and
//!   pinned bit-identical by tests): each run is recorded in full and
//!   replayed three times, once per cost model.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use exclusion_cost::{all_costs, run_priced_probed};
use exclusion_shmem::dynamic::DynRef;
use exclusion_shmem::probe::{NoProbe, Probe, SpanScope, TraceEvent};
use exclusion_shmem::sched::run_scheduler;
use exclusion_trace::Metrics;

use crate::scenario::Scenario;

/// The outcome of one run: one scenario, one seed, all three cost
/// models.
///
/// Equality deliberately ignores [`wall_ns`](RunRecord::wall_ns): the
/// wall-clock timing is measurement metadata, not part of the result —
/// two records of the same run compare equal across machines, thread
/// counts and pricing engines.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Scenario name.
    pub scenario: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Number of processes.
    pub n: usize,
    /// Passages per process.
    pub passages: usize,
    /// The seed this run used.
    pub seed: u64,
    /// Steps in the recorded execution.
    pub steps: usize,
    /// Total state-change (SC) cost.
    pub sc: usize,
    /// Total cache-coherent (CC) cost.
    pub cc: usize,
    /// Total distributed-shared-memory (DSM) cost.
    pub dsm: usize,
    /// The highest SC cost any single process paid.
    pub sc_max_process: usize,
    /// Wall-clock nanoseconds this run took (driving + pricing), as
    /// measured by the worker that ran it. Excluded from equality.
    pub wall_ns: u64,
    /// Why the run failed (budget exhaustion), if it did. Failed runs
    /// carry zero costs and are excluded from summaries.
    pub error: Option<String>,
}

impl PartialEq for RunRecord {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `wall_ns` (see the type docs). The
        // exhaustive destructure (no `..`) makes adding a field a
        // compile error here, so new fields cannot silently drop out
        // of equality.
        let RunRecord {
            scenario,
            algorithm,
            scheduler,
            n,
            passages,
            seed,
            steps,
            sc,
            cc,
            dsm,
            sc_max_process,
            wall_ns: _,
            error,
        } = self;
        *scenario == other.scenario
            && *algorithm == other.algorithm
            && *scheduler == other.scheduler
            && *n == other.n
            && *passages == other.passages
            && *seed == other.seed
            && *steps == other.steps
            && *sc == other.sc
            && *cc == other.cc
            && *dsm == other.dsm
            && *sc_max_process == other.sc_max_process
            && *error == other.error
    }
}

impl Eq for RunRecord {}

/// Distribution summary of one cost model over a scenario's runs.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ModelSummary {
    /// Smallest total.
    pub min: usize,
    /// Median (nearest-rank).
    pub p50: usize,
    /// 90th percentile (nearest-rank).
    pub p90: usize,
    /// 99th percentile (nearest-rank) — the tail that distinguishes an
    /// adversary's rare jackpots from its typical extraction.
    pub p99: usize,
    /// Largest total.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
}

impl ModelSummary {
    fn of(mut values: Vec<usize>) -> ModelSummary {
        if values.is_empty() {
            return ModelSummary::default();
        }
        values.sort_unstable();
        let rank = |p: usize| values[(p * (values.len() - 1) + 50) / 100];
        ModelSummary {
            min: values[0],
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: *values.last().expect("nonempty"),
            mean: values.iter().sum::<usize>() as f64 / values.len() as f64,
        }
    }
}

/// Aggregate over all successful runs of one scenario.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Number of processes.
    pub n: usize,
    /// Passages per process.
    pub passages: usize,
    /// Successful runs.
    pub runs: usize,
    /// Failed runs (budget exhaustion).
    pub failures: usize,
    /// SC cost distribution.
    pub sc: ModelSummary,
    /// CC cost distribution.
    pub cc: ModelSummary,
    /// DSM cost distribution.
    pub dsm: ModelSummary,
}

/// Everything a sweep produced: one record per run plus per-scenario
/// summaries, both in deterministic order (scenario order, then seed
/// order — independent of thread count).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// One record per (scenario, effective seed), in grid order.
    pub records: Vec<RunRecord>,
    /// One summary per scenario, in scenario order.
    pub summaries: Vec<ScenarioSummary>,
    /// Aggregated trace metrics over every run, when
    /// [`SweepOptions::metrics`] asked for them: per-run [`Metrics`]
    /// merged in grid order (each run bracketed by a
    /// [`SpanScope::Run`] span), so the counters are bit-identical for
    /// any thread count. `None` when metrics were not requested.
    pub metrics: Option<Metrics>,
}

/// Options for [`sweep`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Record each execution in full and price it by replay (the legacy
    /// path) instead of streaming the costs in a single pass. Default
    /// `false`: the streaming engine. Results are bit-identical either
    /// way; `record` costs roughly three extra re-executions per run
    /// plus the recording allocation.
    pub record: bool,
    /// Collect a merged [`Metrics`] aggregate over the whole grid into
    /// [`SweepReport::metrics`]. Only the streaming engine emits
    /// per-step events, so combine with `record` only for span/step
    /// counts of interest. Default `false`: the hot path runs with
    /// [`NoProbe`] and pays nothing.
    pub metrics: bool,
}

impl SweepOptions {
    fn resolved_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, jobs.max(1))
    }
}

/// Runs one (scenario, seed) cell with a [`Probe`] observing it: the
/// streaming pricer emits one `Executed` event per step and one
/// `Charged` event per nonzero cost delta, and adaptive (`fanlynch`)
/// schedulers built by the scenario do **not** emit their internal
/// events here — the scheduler is built through the registry's erased
/// builder, which has no probe to thread. (The `workload trace`
/// subcommand constructs the adversary directly to get those; sweeps
/// aggregate execution-side events only.) With [`NoProbe`] this is
/// exactly the cell [`sweep`] runs.
#[must_use]
pub fn run_probed(sc: &Scenario, seed: u64, probe: &mut dyn Probe) -> RunRecord {
    run_one(sc, seed, false, probe)
}

fn run_one(sc: &Scenario, seed: u64, record_executions: bool, probe: &mut dyn Probe) -> RunRecord {
    let mut record = RunRecord {
        scenario: sc.name.clone(),
        algorithm: sc.algorithm.clone(),
        scheduler: sc.scheduler.clone(),
        n: sc.n,
        passages: sc.passages,
        seed,
        steps: 0,
        sc: 0,
        cc: 0,
        dsm: 0,
        sc_max_process: 0,
        wall_ns: 0,
        error: None,
    };
    // The algorithm was resolved once, when the scenario was built; the
    // handle is shared across the whole seed grid (and every worker
    // thread), so a run starts with zero lookups and zero validation.
    let alg = DynRef(sc.automaton().as_ref());
    let mut sched = sc.build_scheduler(seed);
    let start = Instant::now();
    if record_executions {
        match run_scheduler(&alg, sched.as_mut(), sc.passages, sc.max_steps) {
            Ok(exec) => match all_costs(&alg, &exec) {
                Ok((sc_cost, cc_cost, dsm_cost)) => {
                    record.steps = exec.len();
                    record.sc = sc_cost.total();
                    record.cc = cc_cost.total();
                    record.dsm = dsm_cost.total();
                    record.sc_max_process = sc_cost.max_process();
                }
                Err(e) => record.error = Some(e.to_string()),
            },
            Err(e) => record.error = Some(e.to_string()),
        }
    } else {
        match run_priced_probed(&alg, sched.as_mut(), sc.passages, sc.max_steps, probe) {
            Ok(priced) => {
                record.steps = priced.steps;
                record.sc = priced.sc.total();
                record.cc = priced.cc.total();
                record.dsm = priced.dsm.total();
                record.sc_max_process = priced.sc.max_process();
            }
            Err(e) => record.error = Some(e.to_string()),
        }
    }
    record.wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record
}

/// Runs the full scenario × seed grid, sharded across worker threads.
///
/// Workers pull jobs from a shared cursor (no static partitioning, so an
/// expensive scenario cannot strand one thread with all the work), and
/// the report is assembled in grid order: results are bit-identical for
/// any thread count.
#[must_use]
pub fn sweep(scenarios: &[Scenario], opts: &SweepOptions) -> SweepReport {
    let jobs: Vec<(usize, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, sc)| sc.effective_seeds().iter().map(move |&s| (i, s)))
        .collect();
    let threads = opts.resolved_threads(jobs.len());
    let cursor = AtomicUsize::new(0);

    let mut slots: Vec<Option<(RunRecord, Option<Metrics>)>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let jobs = &jobs;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, RunRecord, Option<Metrics>)> = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(i, seed)) = jobs.get(k) else {
                        return out;
                    };
                    if opts.metrics {
                        // One private aggregator per run, bracketed by a
                        // Run span; the per-run aggregates are merged in
                        // grid order below, so the result is independent
                        // of which worker ran which cell.
                        let mut m = Metrics::new();
                        let tag = u32::try_from(k).unwrap_or(u32::MAX);
                        let scope = SpanScope::Run;
                        m.record(&TraceEvent::SpanStart { scope, tag });
                        let start = Instant::now();
                        let record = run_one(&scenarios[i], seed, opts.record, &mut m);
                        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        m.record(&TraceEvent::SpanEnd {
                            scope,
                            tag,
                            wall_ns,
                        });
                        out.push((k, record, Some(m)));
                    } else {
                        out.push((
                            k,
                            run_one(&scenarios[i], seed, opts.record, &mut NoProbe),
                            None,
                        ));
                    }
                }
            }));
        }
        for h in handles {
            for (k, record, metrics) in h.join().expect("worker panicked") {
                slots[k] = Some((record, metrics));
            }
        }
    });
    let mut metrics = opts.metrics.then(Metrics::new);
    let mut records: Vec<RunRecord> = Vec::with_capacity(jobs.len());
    for slot in slots {
        let (record, m) = slot.expect("every job ran");
        records.push(record);
        if let (Some(total), Some(m)) = (metrics.as_mut(), m) {
            total.merge(&m);
        }
    }

    // Group by grid index, not name (two scenarios may share a name, and
    // each still gets its own summary), in one pass over the records —
    // jobs and records are aligned and already in grid order.
    let mut buckets: Vec<Vec<&RunRecord>> = vec![Vec::new(); scenarios.len()];
    for (&(i, _), record) in jobs.iter().zip(&records) {
        buckets[i].push(record);
    }
    let summaries = scenarios
        .iter()
        .zip(&buckets)
        .map(|(sc, mine)| {
            let ok: Vec<&&RunRecord> = mine.iter().filter(|r| r.error.is_none()).collect();
            ScenarioSummary {
                scenario: sc.name.clone(),
                algorithm: sc.algorithm.clone(),
                scheduler: sc.scheduler.clone(),
                n: sc.n,
                passages: sc.passages,
                runs: ok.len(),
                failures: mine.len() - ok.len(),
                sc: ModelSummary::of(ok.iter().map(|r| r.sc).collect()),
                cc: ModelSummary::of(ok.iter().map(|r| r.cc).collect()),
                dsm: ModelSummary::of(ok.iter().map(|r| r.dsm).collect()),
            }
        })
        .collect();
    drop(buckets);

    SweepReport {
        records,
        summaries,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SchedSpec;

    fn grid() -> Vec<Scenario> {
        let mut out = Vec::new();
        for alg in ["dekker-tree", "peterson"] {
            for sched in [
                SchedSpec::round_robin(),
                SchedSpec::random(),
                SchedSpec::greedy(),
                SchedSpec::stagger(8),
            ] {
                out.push(
                    Scenario::builder(alg, 4)
                        .sched(sched)
                        .seeds(0..6)
                        .build()
                        .unwrap(),
                );
            }
        }
        out
    }

    #[test]
    fn sweep_covers_the_grid_in_order() {
        let scenarios = grid();
        let report = sweep(
            &scenarios,
            &SweepOptions {
                threads: 3,
                ..SweepOptions::default()
            },
        );
        // 2 algs × (rr 1 + greedy 1 + random 6 + stagger 6) = 28 runs.
        assert_eq!(report.records.len(), 28);
        assert_eq!(report.summaries.len(), 8);
        // Grid order: records of scenario i precede those of i+1.
        let mut last = 0usize;
        for r in &report.records {
            let i = scenarios.iter().position(|s| s.name == r.scenario).unwrap();
            assert!(i >= last);
            last = i;
        }
        for s in &report.summaries {
            assert_eq!(s.failures, 0, "{}", s.scenario);
            assert!(s.sc.min <= s.sc.p50 && s.sc.p50 <= s.sc.p90 && s.sc.p90 <= s.sc.p99);
            assert!(s.sc.p99 <= s.sc.max);
            assert!(s.sc.min > 0, "{}", s.scenario);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenarios = grid();
        let opts = |threads| SweepOptions {
            threads,
            ..SweepOptions::default()
        };
        let one = sweep(&scenarios, &opts(1));
        let four = sweep(&scenarios, &opts(4));
        let auto = sweep(&scenarios, &opts(0));
        assert_eq!(one, four);
        assert_eq!(one, auto);
    }

    #[test]
    fn streaming_and_replay_engines_agree() {
        let scenarios = grid();
        let streaming = sweep(&scenarios, &SweepOptions::default());
        let replay = sweep(
            &scenarios,
            &SweepOptions {
                record: true,
                ..SweepOptions::default()
            },
        );
        // RunRecord equality ignores wall_ns, so this pins every cost,
        // step count and summary of the two pricing engines against
        // each other.
        assert_eq!(streaming, replay);
    }

    #[test]
    fn runs_carry_wall_clock_timings() {
        let sc = Scenario::builder("peterson", 3)
            .sched(SchedSpec::round_robin())
            .build()
            .unwrap();
        let report = sweep(&[sc], &SweepOptions::default());
        assert!(report.records.iter().all(|r| r.wall_ns > 0));
    }

    #[test]
    fn duplicate_scenario_names_get_separate_summaries() {
        let sc = Scenario::builder("peterson", 3)
            .name("same")
            .sched(SchedSpec::random())
            .seeds(0..3)
            .build()
            .unwrap();
        let report = sweep(&[sc.clone(), sc], &SweepOptions::default());
        assert_eq!(report.records.len(), 6);
        assert_eq!(report.summaries.len(), 2);
        for s in &report.summaries {
            assert_eq!(s.runs, 3, "each summary counts only its own grid slice");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_not_fatal() {
        let sc = Scenario::builder("bakery", 4)
            .sched(SchedSpec::round_robin())
            .max_steps(3)
            .build()
            .unwrap();
        let report = sweep(&[sc], &SweepOptions::default());
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].error.is_some());
        assert_eq!(report.summaries[0].runs, 0);
        assert_eq!(report.summaries[0].failures, 1);
    }

    #[test]
    fn sweep_metrics_are_thread_count_independent() {
        let scenarios = grid();
        let opts = |threads| SweepOptions {
            threads,
            metrics: true,
            ..SweepOptions::default()
        };
        let one = sweep(&scenarios, &opts(1));
        let four = sweep(&scenarios, &opts(4));
        // Metrics equality ignores span wall times, so this pins every
        // counter and histogram across thread counts.
        assert_eq!(one, four);
        let m = one.metrics.expect("metrics were requested");
        let steps: usize = one.records.iter().map(|r| r.steps).sum();
        assert_eq!(m.steps, steps as u64, "one Executed event per step");
        assert_eq!(
            m.span_counts[SpanScope::Run.index()],
            28,
            "one Run span per cell"
        );
        assert!(m.sc > 0 && m.charges > 0);
        // Unprobed sweeps carry no aggregate and identical records.
        let off = sweep(&scenarios, &SweepOptions::default());
        assert!(off.metrics.is_none());
        assert_eq!(off.records, one.records);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = ModelSummary::of(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 60); // nearest-rank on 10 values
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 100);
        assert!((s.mean - 55.0).abs() < 1e-9);
        assert_eq!(ModelSummary::of(vec![]).max, 0);
        assert_eq!(ModelSummary::of(vec![]).p99, 0);
    }
}
