//! Scenario descriptions: which algorithm, at what size, under which
//! contention pattern, over which seed grid.

use std::error::Error;
use std::fmt;

use exclusion_mutex::AnyAlgorithm;
use exclusion_shmem::sched::{Burst, GreedyAdversary, Random, RoundRobin, Sequential, Stagger};
use exclusion_shmem::{ProcessId, Scheduler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A scheduling policy, by description. Where [`Scheduler`]s are live
/// stateful objects, a `SchedSpec` is a value: comparable, printable,
/// and buildable any number of times (once per run of a sweep).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchedSpec {
    /// The canonical no-contention schedule in identity order.
    Sequential,
    /// Deterministic fair interleaving.
    RoundRobin,
    /// Uniform random fair interleaving; one run per seed.
    Random,
    /// The greedy cost-maximizing adversary.
    Greedy,
    /// Phased arrival in waves of `wave` processes every `gap` steps.
    Burst {
        /// Processes per wave.
        wave: usize,
        /// Steps between waves.
        gap: usize,
    },
    /// Staggered arrival: the i-th *arrival* is enabled at `i * stride`
    /// steps, with the arrival order drawn from the run's seed.
    Stagger {
        /// Steps between consecutive arrivals.
        stride: usize,
    },
}

impl SchedSpec {
    /// Whether runs of this spec depend on the seed (and a seed grid is
    /// therefore worth sweeping).
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        matches!(self, SchedSpec::Random | SchedSpec::Stagger { .. })
    }

    /// A stable label for reports (e.g. `"burst(w2,g16)"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedSpec::Sequential => "sequential".into(),
            SchedSpec::RoundRobin => "round-robin".into(),
            SchedSpec::Random => "random".into(),
            SchedSpec::Greedy => "greedy-adversary".into(),
            SchedSpec::Burst { wave, gap } => format!("burst(w{wave},g{gap})"),
            SchedSpec::Stagger { stride } => format!("stagger(s{stride})"),
        }
    }

    /// Parses a CLI spelling: `sequential`, `round-robin`, `random`,
    /// `greedy`, `burst` / `burst:WxG`, `stagger` / `stagger:S`.
    /// Defaults scale with `n`: waves of `⌈n/2⌉` every `2n` steps,
    /// stagger stride `2n`.
    #[must_use]
    pub fn parse(s: &str, n: usize) -> Option<SchedSpec> {
        let (head, param) = match s.split_once(':') {
            Some((h, p)) => (h, Some(p)),
            None => (s, None),
        };
        match (head, param) {
            ("sequential" | "seq", None) => Some(SchedSpec::Sequential),
            ("round-robin" | "rr", None) => Some(SchedSpec::RoundRobin),
            ("random", None) => Some(SchedSpec::Random),
            ("greedy" | "greedy-adversary" | "adversary", None) => Some(SchedSpec::Greedy),
            ("burst", None) => Some(SchedSpec::Burst {
                wave: n.div_ceil(2).max(1),
                gap: 2 * n,
            }),
            ("burst", Some(p)) => {
                let (w, g) = p.split_once('x')?;
                Some(SchedSpec::Burst {
                    wave: w.parse().ok().filter(|&w: &usize| w > 0)?,
                    gap: g.parse().ok()?,
                })
            }
            ("stagger", None) => Some(SchedSpec::Stagger { stride: 2 * n }),
            ("stagger", Some(p)) => Some(SchedSpec::Stagger {
                stride: p.parse().ok()?,
            }),
            _ => None,
        }
    }

    /// Builds a live scheduler for `n` processes driven to `passages`
    /// passages each. `seed` feeds the seeded specs ([`Random`], and
    /// the arrival order of [`Stagger`](SchedSpec::Stagger)); unseeded
    /// specs ignore it. Only [`Sequential`] needs `passages` (its order
    /// encodes the target); the drivers take the target from the run.
    #[must_use]
    pub fn build(&self, n: usize, passages: usize, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedSpec::Sequential => {
                let mut order = Vec::with_capacity(n * passages);
                for _ in 0..passages {
                    order.extend(ProcessId::all(n));
                }
                Box::new(Sequential::new(order))
            }
            SchedSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedSpec::Random => Box::new(Random::new(seed)),
            SchedSpec::Greedy => Box::new(GreedyAdversary::new()),
            SchedSpec::Burst { wave, gap } => Box::new(Burst::new(wave, gap)),
            SchedSpec::Stagger { stride } => {
                // Arrival *order* is the seeded part: the i-th arriving
                // process is enabled at i*stride.
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                let mut enable = vec![0usize; n];
                for (rank, &p) in order.iter().enumerate() {
                    enable[p] = rank * stride;
                }
                Box::new(Stagger::new(enable))
            }
        }
    }
}

/// A scenario: one algorithm at one size, driven to a passage count by
/// one scheduling policy, over a seed grid. Built with
/// [`Scenario::builder`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Report name, unique within a sweep.
    pub name: String,
    /// Algorithm name as understood by [`AnyAlgorithm::by_name`].
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Passages every process completes.
    pub passages: usize,
    /// The scheduling policy.
    pub sched: SchedSpec,
    /// Seed grid. Unseeded policies run once (on the first seed).
    pub seeds: Vec<u64>,
    /// Step budget per run.
    pub max_steps: usize,
}

impl Scenario {
    /// Starts building a scenario for `algorithm` at `n` processes.
    #[must_use]
    pub fn builder(algorithm: impl Into<String>, n: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            algorithm: algorithm.into(),
            n,
            passages: 1,
            sched: SchedSpec::RoundRobin,
            seeds: vec![0],
            max_steps: 50_000_000,
        }
    }

    /// The seeds this scenario actually runs: the full grid for seeded
    /// policies, the first seed only for deterministic ones.
    #[must_use]
    pub fn effective_seeds(&self) -> &[u64] {
        if self.sched.is_seeded() {
            &self.seeds
        } else {
            &self.seeds[..1]
        }
    }
}

/// Builder for [`Scenario`]; validates on [`build`](ScenarioBuilder::build).
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: Option<String>,
    algorithm: String,
    n: usize,
    passages: usize,
    sched: SchedSpec,
    seeds: Vec<u64>,
    max_steps: usize,
}

impl ScenarioBuilder {
    /// Overrides the auto-derived report name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Passages every process completes (default 1).
    #[must_use]
    pub fn passages(mut self, passages: usize) -> Self {
        self.passages = passages;
        self
    }

    /// The scheduling policy (default round-robin).
    #[must_use]
    pub fn sched(mut self, sched: SchedSpec) -> Self {
        self.sched = sched;
        self
    }

    /// The seed grid (default `[0]`).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Step budget per run (default 50 million).
    #[must_use]
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Rejects unknown algorithm names, `n = 0`, `passages = 0`, an
    /// empty seed grid, and a zero step budget.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.n == 0 {
            return Err(ScenarioError::ZeroProcesses);
        }
        if self.passages == 0 {
            return Err(ScenarioError::ZeroPassages);
        }
        if self.seeds.is_empty() {
            return Err(ScenarioError::NoSeeds);
        }
        if self.max_steps == 0 {
            return Err(ScenarioError::NoBudget);
        }
        if AnyAlgorithm::by_name(&self.algorithm, self.n.max(2)).is_none() {
            return Err(ScenarioError::UnknownAlgorithm(self.algorithm));
        }
        let name = self.name.unwrap_or_else(|| {
            format!(
                "{}/{}/n{}x{}",
                self.algorithm,
                self.sched.label(),
                self.n,
                self.passages
            )
        });
        Ok(Scenario {
            name,
            algorithm: self.algorithm,
            n: self.n,
            passages: self.passages,
            sched: self.sched,
            seeds: self.seeds,
            max_steps: self.max_steps,
        })
    }
}

/// Why a [`ScenarioBuilder`] refused to build.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScenarioError {
    /// The algorithm name is not in [`AnyAlgorithm`]'s suite.
    UnknownAlgorithm(String),
    /// `n = 0`.
    ZeroProcesses,
    /// `passages = 0`.
    ZeroPassages,
    /// The seed grid is empty.
    NoSeeds,
    /// `max_steps = 0`.
    NoBudget,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownAlgorithm(name) => {
                write!(
                    f,
                    "unknown algorithm `{name}` (see `AnyAlgorithm::full_suite`)"
                )
            }
            ScenarioError::ZeroProcesses => write!(f, "a scenario needs at least one process"),
            ScenarioError::ZeroPassages => write!(f, "a scenario needs at least one passage"),
            ScenarioError::NoSeeds => write!(f, "a scenario needs at least one seed"),
            ScenarioError::NoBudget => write!(f, "a scenario needs a positive step budget"),
        }
    }
}

impl Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_derives_names_and_validates() {
        let sc = Scenario::builder("dekker-tree", 8)
            .passages(2)
            .sched(SchedSpec::Greedy)
            .seeds(0..4)
            .build()
            .unwrap();
        assert_eq!(sc.name, "dekker-tree/greedy-adversary/n8x2");
        // Greedy is deterministic: only one effective seed.
        assert_eq!(sc.effective_seeds(), &[0]);

        let err = Scenario::builder("no-such-lock", 4).build().unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownAlgorithm(_)));
        assert!(Scenario::builder("bakery", 0).build().is_err());
        assert!(Scenario::builder("bakery", 4).seeds([]).build().is_err());
        assert!(Scenario::builder("bakery", 4).passages(0).build().is_err());
        assert!(Scenario::builder("bakery", 4).max_steps(0).build().is_err());
    }

    #[test]
    fn parse_covers_every_spelling() {
        assert_eq!(SchedSpec::parse("rr", 8), Some(SchedSpec::RoundRobin));
        assert_eq!(SchedSpec::parse("seq", 8), Some(SchedSpec::Sequential));
        assert_eq!(SchedSpec::parse("random", 8), Some(SchedSpec::Random));
        assert_eq!(SchedSpec::parse("greedy", 8), Some(SchedSpec::Greedy));
        assert_eq!(
            SchedSpec::parse("burst", 8),
            Some(SchedSpec::Burst { wave: 4, gap: 16 })
        );
        assert_eq!(
            SchedSpec::parse("burst:2x32", 8),
            Some(SchedSpec::Burst { wave: 2, gap: 32 })
        );
        assert_eq!(
            SchedSpec::parse("stagger:5", 8),
            Some(SchedSpec::Stagger { stride: 5 })
        );
        assert_eq!(SchedSpec::parse("burst:0x4", 8), None);
        assert_eq!(SchedSpec::parse("nope", 8), None);
    }

    #[test]
    fn sequential_build_honors_the_passage_target() {
        use exclusion_shmem::sched::run_scheduler;
        let alg = AnyAlgorithm::by_name("peterson", 3).unwrap();
        let mut sched = SchedSpec::Sequential.build(3, 2, 0);
        let exec = run_scheduler(&alg, sched.as_mut(), 2, 1_000_000).unwrap();
        assert_eq!(exec.critical_order().len(), 6, "3 processes x 2 passages");
    }

    #[test]
    fn stagger_arrival_order_depends_on_seed() {
        let spec = SchedSpec::Stagger { stride: 10 };
        assert!(spec.is_seeded());
        // Different seeds shuffle arrivals differently for most seeds;
        // just check both build and are usable.
        let mut a = spec.build(6, 1, 1);
        let mut b = spec.build(6, 1, 2);
        assert_eq!(a.name(), "stagger");
        assert_eq!(b.name(), "stagger");
        use exclusion_mutex::AnyAlgorithm;
        use exclusion_shmem::sched::run_scheduler;
        let alg = AnyAlgorithm::by_name("peterson", 6).unwrap();
        let ea = run_scheduler(&alg, a.as_mut(), 1, 10_000_000).unwrap();
        let eb = run_scheduler(&alg, b.as_mut(), 1, 10_000_000).unwrap();
        assert!(ea.mutual_exclusion(6));
        assert!(eb.mutual_exclusion(6));
    }
}
