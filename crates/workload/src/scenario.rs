//! Scenario descriptions: which algorithm, at what size, under which
//! contention pattern, over which seed grid.
//!
//! Both the algorithm and the contention pattern are *specs* —
//! `name[:key=value,…]` strings resolved against open registries
//! ([`AlgorithmRegistry`] from `exclusion-mutex`, [`SchedulerRegistry`]
//! from this crate) — so anything registered, built-in or downstream,
//! can be swept without touching an enum or a parser. Resolution
//! happens **once, at build time**: a [`Scenario`] carries the live
//! handles (the erased automaton, the per-run scheduler builder), so
//! the sweep's per-seed hot loop performs no lookups and validation
//! errors (unknown names, bad parameters, too few processes for the
//! algorithm) surface before anything runs.

use std::error::Error;
use std::fmt;

use exclusion_mutex::registry::{AlgorithmRegistry, DynAlgorithm, ResolvedAlgorithm};
use exclusion_shmem::spec::{Spec, SpecError};
use exclusion_shmem::Scheduler;

use crate::schedreg::{ResolvedSched, SchedulerRegistry};

/// A scheduling policy, by spec. Where [`Scheduler`]s are live stateful
/// objects, a `SchedSpec` is a value: comparable, printable, and
/// resolvable any number of times against a [`SchedulerRegistry`].
///
/// The convenience constructors cover the built-in policies; arbitrary
/// (including downstream-registered) policies come from
/// [`parse`](SchedSpec::parse) or [`from_spec`](SchedSpec::from_spec).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SchedSpec(Spec);

impl SchedSpec {
    /// The canonical no-contention schedule in identity order.
    #[must_use]
    pub fn sequential() -> Self {
        SchedSpec(Spec::new("sequential"))
    }

    /// Deterministic fair interleaving.
    #[must_use]
    pub fn round_robin() -> Self {
        SchedSpec(Spec::new("round-robin"))
    }

    /// Uniform random fair interleaving; one run per seed.
    #[must_use]
    pub fn random() -> Self {
        SchedSpec(Spec::new("random"))
    }

    /// The greedy cost-maximizing adversary.
    #[must_use]
    pub fn greedy() -> Self {
        SchedSpec(Spec::new("greedy-adversary"))
    }

    /// Phased arrival in waves of `wave` processes every `gap` steps.
    #[must_use]
    pub fn burst(wave: usize, gap: usize) -> Self {
        SchedSpec(Spec::new("burst").with("wave", wave).with("gap", gap))
    }

    /// Staggered arrival: the i-th *arrival* is enabled at `i * stride`
    /// steps, with the arrival order drawn from the run's seed.
    #[must_use]
    pub fn stagger(stride: usize) -> Self {
        SchedSpec(Spec::new("stagger").with("stride", stride))
    }

    /// Parses a spec spelling — canonical (`"burst:wave=2,gap=32"`),
    /// aliased (`"rr"`, `"greedy"`), or legacy positional
    /// (`"burst:2x32"`, `"stagger:5"`).
    ///
    /// Syntax only; whether the name resolves is decided against a
    /// registry (at [`ScenarioBuilder::build`] time, or directly via
    /// [`SchedulerRegistry::resolve`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Malformed`] when the text does not match
    /// the spec grammar.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        Ok(SchedSpec(Spec::parse(s)?))
    }

    /// Wraps an already-parsed [`Spec`].
    #[must_use]
    pub fn from_spec(spec: Spec) -> Self {
        SchedSpec(spec)
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &Spec {
        &self.0
    }

    /// The spec's spelling (`parse(label()) == Ok(self)`); note that
    /// *resolved* report labels may differ by making defaults explicit
    /// (`"burst"` resolves to the label `"burst:wave=4,gap=16"` at
    /// `n = 8`).
    #[must_use]
    pub fn label(&self) -> String {
        self.0.label()
    }
}

impl fmt::Display for SchedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.label())
    }
}

/// A scenario: one algorithm at one size, driven to a passage count by
/// one scheduling policy, over a seed grid — with both registry handles
/// already resolved. Built with [`Scenario::builder`].
#[derive(Clone)]
pub struct Scenario {
    /// Report name, unique within a sweep.
    pub name: String,
    /// Resolved algorithm label (canonical spec, e.g.
    /// `"filter:levels=5"`).
    pub algorithm: String,
    /// Resolved scheduler label (canonical spec with concrete
    /// parameters, e.g. `"burst:wave=4,gap=16"`).
    pub scheduler: String,
    /// Number of processes.
    pub n: usize,
    /// Passages every process completes.
    pub passages: usize,
    /// Seed grid. Unseeded policies run once (on the first seed).
    pub seeds: Vec<u64>,
    /// Step budget per run.
    pub max_steps: usize,
    alg: ResolvedAlgorithm,
    sched: ResolvedSched,
}

impl Scenario {
    /// Starts building a scenario for `algorithm` (a spec string) at
    /// `n` processes.
    #[must_use]
    pub fn builder(algorithm: impl Into<String>, n: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            algorithm: algorithm.into(),
            n,
            passages: 1,
            sched: SchedSpec::round_robin(),
            seeds: vec![0],
            max_steps: 50_000_000,
        }
    }

    /// The resolved erased automaton — shared (it is an `Arc`) by every
    /// run of the scenario across the sweep's worker threads.
    #[must_use]
    pub fn automaton(&self) -> &DynAlgorithm {
        &self.alg.automaton
    }

    /// Whether the resolved algorithm uses RMW primitives.
    #[must_use]
    pub fn uses_rmw(&self) -> bool {
        self.alg.uses_rmw
    }

    /// Whether runs depend on the seed.
    #[must_use]
    pub fn seeded(&self) -> bool {
        self.sched.seeded
    }

    /// A live scheduler for one run — no lookup, no re-validation; just
    /// the resolved entry's constructor.
    #[must_use]
    pub fn build_scheduler(&self, seed: u64) -> Box<dyn Scheduler> {
        self.sched.build(self.passages, seed)
    }

    /// The seeds this scenario actually runs: the full grid for seeded
    /// policies, the first seed only for deterministic ones.
    #[must_use]
    pub fn effective_seeds(&self) -> &[u64] {
        if self.seeded() {
            &self.seeds
        } else {
            &self.seeds[..1]
        }
    }
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        // The resolved handles are functions of the labels and `n`
        // *within one registry*, so comparing the describable fields is
        // exact for scenarios built against the same registries (the
        // overwhelmingly common case: `build()`). Scenarios from
        // different `build_with` registries that shadow the same name
        // with different constructors compare equal despite running
        // different code — don't key caches on `Scenario` equality
        // across registries.
        (
            &self.name,
            &self.algorithm,
            &self.scheduler,
            self.n,
            self.passages,
            &self.seeds,
            self.max_steps,
        ) == (
            &other.name,
            &other.algorithm,
            &other.scheduler,
            other.n,
            other.passages,
            &other.seeds,
            other.max_steps,
        )
    }
}

impl Eq for Scenario {}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("algorithm", &self.algorithm)
            .field("scheduler", &self.scheduler)
            .field("n", &self.n)
            .field("passages", &self.passages)
            .field("seeds", &self.seeds)
            .field("max_steps", &self.max_steps)
            .finish_non_exhaustive()
    }
}

/// Builder for [`Scenario`]; validates and resolves on
/// [`build`](ScenarioBuilder::build).
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: Option<String>,
    algorithm: String,
    n: usize,
    passages: usize,
    sched: SchedSpec,
    seeds: Vec<u64>,
    max_steps: usize,
}

impl ScenarioBuilder {
    /// Overrides the auto-derived report name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Passages every process completes (default 1).
    #[must_use]
    pub fn passages(mut self, passages: usize) -> Self {
        self.passages = passages;
        self
    }

    /// The scheduling policy (default round-robin).
    #[must_use]
    pub fn sched(mut self, sched: SchedSpec) -> Self {
        self.sched = sched;
        self
    }

    /// The seed grid (default `[0]`).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Step budget per run (default 50 million).
    #[must_use]
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Validates and builds the scenario against the default (global)
    /// registries.
    ///
    /// # Errors
    ///
    /// As [`build_with`](ScenarioBuilder::build_with).
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.build_with(AlgorithmRegistry::global(), SchedulerRegistry::global())
    }

    /// Validates and builds the scenario against explicit registries —
    /// the entry point for downstream crates sweeping their own
    /// algorithms or schedulers.
    ///
    /// Both specs are resolved here, at the scenario's *actual* `n`
    /// (validated against the algorithm's `min_n` floor), and the
    /// resolved handles ride inside the scenario: `sweep`'s per-seed
    /// loop never looks anything up again.
    ///
    /// # Errors
    ///
    /// Rejects `n = 0`, `passages = 0`, an empty seed grid, a zero step
    /// budget, and — via [`ScenarioError::Spec`] — malformed specs,
    /// unknown names (with the registry contents and a nearest-name
    /// suggestion), invalid parameters, and `n` below the algorithm's
    /// `min_n`.
    pub fn build_with(
        self,
        algorithms: &AlgorithmRegistry,
        schedulers: &SchedulerRegistry,
    ) -> Result<Scenario, ScenarioError> {
        if self.n == 0 {
            return Err(ScenarioError::ZeroProcesses);
        }
        if self.passages == 0 {
            return Err(ScenarioError::ZeroPassages);
        }
        if self.seeds.is_empty() {
            return Err(ScenarioError::NoSeeds);
        }
        if self.max_steps == 0 {
            return Err(ScenarioError::NoBudget);
        }
        let alg_spec = Spec::parse(&self.algorithm)?;
        let alg = algorithms.resolve(&alg_spec, self.n)?;
        let sched = schedulers.resolve(self.sched.spec(), self.n)?;
        let name = self.name.unwrap_or_else(|| {
            format!(
                "{}/{}/n{}x{}",
                alg.label, sched.label, self.n, self.passages
            )
        });
        Ok(Scenario {
            name,
            algorithm: alg.label.clone(),
            scheduler: sched.label.clone(),
            n: self.n,
            passages: self.passages,
            seeds: self.seeds,
            max_steps: self.max_steps,
            alg,
            sched,
        })
    }
}

/// Why a [`ScenarioBuilder`] refused to build.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScenarioError {
    /// An algorithm or scheduler spec failed to parse or resolve
    /// (unknown name, invalid parameter, `n` below the algorithm's
    /// `min_n` floor).
    Spec(SpecError),
    /// `n = 0`.
    ZeroProcesses,
    /// `passages = 0`.
    ZeroPassages,
    /// The seed grid is empty.
    NoSeeds,
    /// `max_steps = 0`.
    NoBudget,
}

impl From<SpecError> for ScenarioError {
    fn from(e: SpecError) -> Self {
        ScenarioError::Spec(e)
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec(e) => e.fmt(f),
            ScenarioError::ZeroProcesses => write!(f, "a scenario needs at least one process"),
            ScenarioError::ZeroPassages => write!(f, "a scenario needs at least one passage"),
            ScenarioError::NoSeeds => write!(f, "a scenario needs at least one seed"),
            ScenarioError::NoBudget => write!(f, "a scenario needs a positive step budget"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_derives_names_and_validates() {
        let sc = Scenario::builder("dekker-tree", 8)
            .passages(2)
            .sched(SchedSpec::greedy())
            .seeds(0..4)
            .build()
            .unwrap();
        assert_eq!(sc.name, "dekker-tree/greedy-adversary/n8x2");
        // Greedy is deterministic: only one effective seed.
        assert_eq!(sc.effective_seeds(), &[0]);
        assert!(!sc.uses_rmw());

        let err = Scenario::builder("no-such-lock", 4).build().unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Spec(SpecError::UnknownName { .. })
        ));
        assert!(
            err.to_string().contains("dekker-tree"),
            "lists registry: {err}"
        );
        assert!(Scenario::builder("bakery", 0).build().is_err());
        assert!(Scenario::builder("bakery", 4).seeds([]).build().is_err());
        assert!(Scenario::builder("bakery", 4).passages(0).build().is_err());
        assert!(Scenario::builder("bakery", 4).max_steps(0).build().is_err());
    }

    #[test]
    fn build_validates_at_the_actual_n_not_a_floor() {
        use exclusion_mutex::registry::{AlgorithmEntry, AlgorithmInfo};
        use std::sync::Arc;
        // An entry that genuinely needs n >= 2: building it at n = 1
        // must fail at *build* time, not at run time.
        let mut algs = AlgorithmRegistry::standard();
        algs.register(AlgorithmEntry::new(
            AlgorithmInfo {
                name: "needs-two".into(),
                aliases: vec![],
                summary: "min_n floor fixture".into(),
                min_n: 2,
                uses_rmw: false,
                recoverable: false,
                symmetric: false,
                deadlock_free: true,
                cost_class: "test".into(),
                params: vec![],
            },
            |_, n| Ok(Arc::new(exclusion_mutex::Peterson::new(n))),
        ));
        let scheds = SchedulerRegistry::standard();
        assert!(Scenario::builder("needs-two", 2)
            .build_with(&algs, &scheds)
            .is_ok());
        let err = Scenario::builder("needs-two", 1)
            .build_with(&algs, &scheds)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::Spec(SpecError::TooFewProcesses { n: 1, min_n: 2, .. })
            ),
            "{err}"
        );
        // The standard suite runs all the way down to n = 1.
        assert!(Scenario::builder("bakery", 1).build().is_ok());
    }

    #[test]
    fn parameterized_specs_flow_into_names_and_labels() {
        let sc = Scenario::builder("filter:levels=5", 4)
            .sched(SchedSpec::burst(2, 32))
            .build()
            .unwrap();
        assert_eq!(sc.algorithm, "filter:levels=5");
        assert_eq!(sc.scheduler, "burst:wave=2,gap=32");
        assert_eq!(sc.name, "filter:levels=5/burst:wave=2,gap=32/n4x1");
        assert_eq!(sc.automaton().registers(), 9);

        let err = Scenario::builder("filter:levels=1", 4).build().unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Spec(SpecError::InvalidParam { .. })
        ));
    }

    #[test]
    fn sched_spec_constructors_roundtrip_through_parse() {
        for (spec, spelling) in [
            (SchedSpec::sequential(), "sequential"),
            (SchedSpec::round_robin(), "round-robin"),
            (SchedSpec::random(), "random"),
            (SchedSpec::greedy(), "greedy-adversary"),
            (SchedSpec::burst(2, 16), "burst:wave=2,gap=16"),
            (SchedSpec::stagger(5), "stagger:stride=5"),
        ] {
            assert_eq!(spec.label(), spelling);
            assert_eq!(SchedSpec::parse(spelling).unwrap(), spec);
            assert_eq!(spec.to_string(), spelling);
        }
    }

    #[test]
    fn sequential_build_honors_the_passage_target() {
        use exclusion_shmem::dynamic::DynRef;
        use exclusion_shmem::sched::run_scheduler;
        let sc = Scenario::builder("peterson", 3)
            .passages(2)
            .sched(SchedSpec::sequential())
            .build()
            .unwrap();
        let mut sched = sc.build_scheduler(0);
        let exec = run_scheduler(
            &DynRef(sc.automaton().as_ref()),
            sched.as_mut(),
            2,
            1_000_000,
        )
        .unwrap();
        assert_eq!(exec.critical_order().len(), 6, "3 processes x 2 passages");
    }

    #[test]
    fn stagger_arrival_order_depends_on_seed() {
        use exclusion_shmem::dynamic::DynRef;
        use exclusion_shmem::sched::run_scheduler;
        let sc = Scenario::builder("peterson", 6)
            .sched(SchedSpec::stagger(10))
            .seeds([1, 2])
            .build()
            .unwrap();
        assert!(sc.seeded());
        assert_eq!(sc.effective_seeds().len(), 2);
        let alg = DynRef(sc.automaton().as_ref());
        let ea = run_scheduler(&alg, sc.build_scheduler(1).as_mut(), 1, 10_000_000).unwrap();
        let eb = run_scheduler(&alg, sc.build_scheduler(2).as_mut(), 1, 10_000_000).unwrap();
        assert!(ea.mutual_exclusion(6));
        assert!(eb.mutual_exclusion(6));
    }
}
