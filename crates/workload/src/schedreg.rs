//! The open scheduler registry: named entries resolving specs like
//! `"burst:wave=2,gap=32"` into live [`Scheduler`] builders.
//!
//! The counterpart of `exclusion-mutex`'s algorithm registry for the
//! *adversary* side of a scenario. Where `SchedSpec` used to be a
//! hardcoded enum (new contention pattern ⇒ edit the enum, its parser,
//! the CLI and the tests), the registry is a runtime value: downstream
//! crates [`register`](SchedulerRegistry::register) entries for their own
//! [`Scheduler`] implementations and every consumer resolves against the
//! same table.
//!
//! Resolution is staged to keep the sweep hot loop clean: a spec is
//! resolved **once per scenario** (name lookup, parameter validation,
//! defaults scaled to `n`), producing a [`ResolvedSched`] whose
//! [`build`](ResolvedSched::build) is then called once per run with just
//! `(passages, seed)` — no parsing, no lookup, no validation per seed.
//!
//! # Example: registering a custom scheduler
//!
//! ```
//! use exclusion_workload::schedreg::{
//!     ResolvedSched, SchedulerEntry, SchedulerInfo, SchedulerRegistry,
//! };
//! use exclusion_shmem::sched::RoundRobin;
//! use exclusion_shmem::spec::Spec;
//! use std::sync::Arc;
//!
//! let mut reg = SchedulerRegistry::standard();
//! reg.register(SchedulerEntry::new(
//!     SchedulerInfo {
//!         name: "my-rr".into(),
//!         aliases: vec![],
//!         summary: "round robin under a different name".into(),
//!         seeded: false,
//!         params: vec![],
//!     },
//!     |spec, _n| {
//!         spec.expect_params(&[], false)?;
//!         Ok((spec.clone(), Arc::new(|_passages, _seed| Box::new(RoundRobin::new()) as _)))
//!     },
//! ));
//! let r = reg.resolve(&Spec::parse("my-rr").unwrap(), 4).unwrap();
//! assert_eq!(r.build(1, 0).name(), "round-robin");
//! ```

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use exclusion_bound::AdaptiveAdversary;
use exclusion_shmem::sched::{Burst, GreedyAdversary, Random, RoundRobin, Sequential, Stagger};
use exclusion_shmem::spec::{suggest, ParamInfo, Spec, SpecError};
use exclusion_shmem::{ProcessId, Scheduler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A per-run scheduler constructor: called with `(passages, seed)` for
/// every run of a scenario. Everything else (process count, resolved
/// parameters) is already baked in by resolution.
pub type SchedBuilder = Arc<dyn Fn(usize, u64) -> Box<dyn Scheduler> + Send + Sync>;

/// Metadata describing one scheduler entry — what `workload --list`
/// prints.
#[derive(Clone, Debug)]
pub struct SchedulerInfo {
    /// The canonical spec name (`"greedy-adversary"`).
    pub name: String,
    /// Accepted alternative spellings (`"greedy"`, `"adversary"`).
    pub aliases: Vec<String>,
    /// One-line description.
    pub summary: String,
    /// Whether runs depend on the seed (and a seed grid is therefore
    /// worth sweeping).
    pub seeded: bool,
    /// Parameters the entry accepts in `name:key=value,…` specs.
    pub params: Vec<ParamInfo>,
}

/// What an entry's resolver returns: the *canonical* spec (aliases
/// normalized, defaults made explicit — this becomes the report label)
/// plus the per-run builder.
pub type ResolvedParts = (Spec, SchedBuilder);

type Resolver = dyn Fn(&Spec, usize) -> Result<ResolvedParts, SpecError> + Send + Sync;

/// One named scheduling policy in a [`SchedulerRegistry`].
#[derive(Clone)]
pub struct SchedulerEntry {
    info: SchedulerInfo,
    resolver: Arc<Resolver>,
}

impl SchedulerEntry {
    /// An entry resolving specs with `resolver`, which receives the
    /// parsed spec and the process count `n` (so defaults can scale
    /// with it) and returns the canonical spec plus the per-run
    /// builder.
    pub fn new(
        info: SchedulerInfo,
        resolver: impl Fn(&Spec, usize) -> Result<ResolvedParts, SpecError> + Send + Sync + 'static,
    ) -> Self {
        SchedulerEntry {
            info,
            resolver: Arc::new(resolver),
        }
    }

    /// The entry's metadata.
    #[must_use]
    pub fn info(&self) -> &SchedulerInfo {
        &self.info
    }
}

impl std::fmt::Debug for SchedulerEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerEntry")
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// A successfully resolved scheduler spec, bound to a process count:
/// build one live scheduler per run with [`build`](ResolvedSched::build).
#[derive(Clone)]
pub struct ResolvedSched {
    /// Canonical label with concrete parameters
    /// (`"burst:wave=4,gap=16"`), used in reports; parseable back into
    /// an equivalent spec.
    pub label: String,
    /// Whether runs depend on the seed.
    pub seeded: bool,
    /// Crash budget requested by the spec (`fanlynch:crashes=2`),
    /// zero for crash-free policies. Schedulers only *order* steps and
    /// cannot inject crashes themselves; fault-aware drivers read this
    /// to size the [`FaultPlan`](exclusion_shmem::FaultPlan) they pair
    /// the policy with.
    pub crashes: usize,
    builder: SchedBuilder,
}

impl ResolvedSched {
    /// A live scheduler for one run driving every process to `passages`
    /// passages; `seed` feeds seeded policies and is ignored by
    /// deterministic ones.
    #[must_use]
    pub fn build(&self, passages: usize, seed: u64) -> Box<dyn Scheduler> {
        (self.builder)(passages, seed)
    }
}

impl std::fmt::Debug for ResolvedSched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedSched")
            .field("label", &self.label)
            .field("seeded", &self.seeded)
            .field("crashes", &self.crashes)
            .finish_non_exhaustive()
    }
}

/// An open, runtime-extensible family of scheduling policies.
#[derive(Clone, Debug, Default)]
pub struct SchedulerRegistry {
    entries: Vec<SchedulerEntry>,
    /// Canonical names *and* aliases, each mapping to an entry index.
    by_name: HashMap<String, usize>,
}

impl SchedulerRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        SchedulerRegistry::default()
    }

    /// The seven built-in policies: `sequential` (alias `seq`),
    /// `round-robin` (`rr`), `random`, `greedy-adversary` (`greedy`,
    /// `adversary`; accepts `patience=K`), `fanlynch` (`adaptive`,
    /// `fan-lynch`; the adaptive lower-bound adversary of
    /// `exclusion-bound`, accepts `patience=K` and a deterministic
    /// tie-break `seed=S` — the sweep's seed grid is not used), `burst`
    /// (`wave=W,gap=G`, legacy `burst:WxG`; defaults scale with `n`),
    /// and `stagger` (`stride=S`, legacy `stagger:S`; seeded arrival
    /// order).
    #[must_use]
    pub fn standard() -> Self {
        let mut reg = SchedulerRegistry::empty();
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "sequential".into(),
                aliases: vec!["seq".into()],
                summary: "canonical no-contention schedule in identity order".into(),
                seeded: false,
                params: vec![],
            },
            |spec, n| {
                spec.expect_params(&[], false)?;
                let builder: SchedBuilder = Arc::new(move |passages, _seed| {
                    let mut order = Vec::with_capacity(n * passages);
                    for _ in 0..passages {
                        order.extend(ProcessId::all(n));
                    }
                    Box::new(Sequential::new(order))
                });
                Ok((Spec::new("sequential"), builder))
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "round-robin".into(),
                aliases: vec!["rr".into()],
                summary: "deterministic fair interleaving".into(),
                seeded: false,
                params: vec![],
            },
            |spec, _n| {
                spec.expect_params(&[], false)?;
                let builder: SchedBuilder =
                    Arc::new(|_passages, _seed| Box::new(RoundRobin::new()));
                Ok((Spec::new("round-robin"), builder))
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "random".into(),
                aliases: vec![],
                summary: "uniform random fair interleaving; one run per seed".into(),
                seeded: true,
                params: vec![],
            },
            |spec, _n| {
                spec.expect_params(&[], false)?;
                let builder: SchedBuilder = Arc::new(|_passages, seed| Box::new(Random::new(seed)));
                Ok((Spec::new("random"), builder))
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "greedy-adversary".into(),
                aliases: vec!["greedy".into(), "adversary".into()],
                summary: "cost-maximizing adversary (charged steps first)".into(),
                seeded: false,
                params: vec![ParamInfo {
                    key: "patience",
                    help: "starvation-valve threshold in picks (default 4n+4)",
                }],
            },
            |spec, _n| {
                spec.expect_params(&["patience"], false)?;
                match spec.get("patience") {
                    None => {
                        let builder: SchedBuilder =
                            Arc::new(|_passages, _seed| Box::new(GreedyAdversary::new()));
                        Ok((Spec::new("greedy-adversary"), builder))
                    }
                    Some(_) => {
                        // `patience=0` would hand the adversary an
                        // always-open starvation valve; out of range.
                        let patience = spec.usize_param_at_least("patience", 1, 1)?;
                        let builder: SchedBuilder = Arc::new(move |_passages, _seed| {
                            Box::new(GreedyAdversary::with_patience(patience))
                        });
                        Ok((
                            Spec::new("greedy-adversary").with("patience", patience),
                            builder,
                        ))
                    }
                }
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "fanlynch".into(),
                aliases: vec!["adaptive".into(), "fan-lynch".into()],
                summary: "adaptive lower-bound adversary (awareness-partition strategy)".into(),
                seeded: false,
                params: vec![
                    ParamInfo {
                        key: "patience",
                        help: "starvation-valve threshold in picks (default 4n+4)",
                    },
                    ParamInfo {
                        key: "seed",
                        help: "tie-break seed (default 0); the sweep's seed grid is NOT used",
                    },
                    ParamInfo {
                        key: "crashes",
                        help: "crash budget for fault-aware drivers (default 0); \
                               the policy orders steps, the driver injects the faults",
                    },
                ],
            },
            |spec, _n| {
                // `seeded: false` is a contract: the policy must not
                // read the per-run sweep seed (`effective_seeds()` runs
                // it exactly once). Tie-break perturbation is therefore
                // an explicit spec parameter, canonical in the label.
                spec.expect_params(&["patience", "seed", "crashes"], false)?;
                let seed = spec.usize_param("seed", 0)? as u64;
                let patience = spec
                    .get("patience")
                    .map(|_| spec.usize_param_at_least("patience", 1, 1))
                    .transpose()?;
                let crashes = spec.usize_param("crashes", 0)?;
                let mut canonical = Spec::new("fanlynch");
                if let Some(p) = patience {
                    canonical = canonical.with("patience", p);
                }
                if spec.get("seed").is_some() {
                    canonical = canonical.with("seed", seed);
                }
                if spec.get("crashes").is_some() {
                    canonical = canonical.with("crashes", crashes);
                }
                let builder: SchedBuilder = Arc::new(move |_passages, _seed| {
                    Box::new(match patience {
                        Some(p) => AdaptiveAdversary::with_patience(seed, p),
                        None => AdaptiveAdversary::new(seed),
                    })
                });
                Ok((canonical, builder))
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "burst".into(),
                aliases: vec![],
                summary: "phased arrival in waves".into(),
                seeded: false,
                params: vec![
                    ParamInfo {
                        key: "wave",
                        help: "processes per wave, > 0 (default ⌈n/2⌉)",
                    },
                    ParamInfo {
                        key: "gap",
                        help: "steps between waves (default 2n)",
                    },
                ],
            },
            |spec, n| {
                // Legacy positional spelling: `burst:WxG`.
                let (wave, gap) = if let Some(p) = positional(spec)? {
                    let bad = || SpecError::InvalidParam {
                        spec: spec.label(),
                        key: String::new(),
                        value: p.to_string(),
                        expected: "WxG (e.g. `burst:2x32`) or wave=W,gap=G".to_string(),
                    };
                    let (w, g) = p.split_once('x').ok_or_else(bad)?;
                    (w.parse().map_err(|_| bad())?, g.parse().map_err(|_| bad())?)
                } else {
                    spec.expect_params(&["wave", "gap"], false)?;
                    (
                        spec.usize_param("wave", n.div_ceil(2).max(1))?,
                        spec.usize_param("gap", 2 * n)?,
                    )
                };
                if wave == 0 {
                    return Err(SpecError::InvalidParam {
                        spec: spec.label(),
                        key: "wave".into(),
                        value: "0".into(),
                        expected: "a positive wave size".into(),
                    });
                }
                let builder: SchedBuilder =
                    Arc::new(move |_passages, _seed| Box::new(Burst::new(wave, gap)));
                Ok((
                    Spec::new("burst").with("wave", wave).with("gap", gap),
                    builder,
                ))
            },
        ));
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "stagger".into(),
                aliases: vec![],
                summary: "staggered arrival; order drawn from the seed".into(),
                seeded: true,
                params: vec![ParamInfo {
                    key: "stride",
                    help: "steps between consecutive arrivals (default 2n)",
                }],
            },
            |spec, n| {
                // Legacy positional spelling: `stagger:S`.
                let stride = if let Some(p) = positional(spec)? {
                    p.parse().map_err(|_| SpecError::InvalidParam {
                        spec: spec.label(),
                        key: String::new(),
                        value: p.to_string(),
                        expected: "a stride in steps (e.g. `stagger:16`)".to_string(),
                    })?
                } else {
                    spec.expect_params(&["stride"], false)?;
                    spec.usize_param("stride", 2 * n)?
                };
                let builder: SchedBuilder = Arc::new(move |_passages, seed| {
                    // Arrival *order* is the seeded part: the i-th
                    // arriving process is enabled at i*stride.
                    let mut order: Vec<usize> = (0..n).collect();
                    order.shuffle(&mut StdRng::seed_from_u64(seed));
                    let mut enable = vec![0usize; n];
                    for (rank, &p) in order.iter().enumerate() {
                        enable[p] = rank * stride;
                    }
                    Box::new(Stagger::new(enable))
                });
                Ok((Spec::new("stagger").with("stride", stride), builder))
            },
        ));
        reg
    }

    /// The process-wide default registry (the standard policies), built
    /// once on first use.
    #[must_use]
    pub fn global() -> &'static SchedulerRegistry {
        static GLOBAL: OnceLock<SchedulerRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SchedulerRegistry::standard)
    }

    /// Adds an entry; an existing entry with the same **canonical**
    /// name is replaced (later registration wins). A name that merely
    /// matches another entry's alias becomes a new entry and takes the
    /// spelling over from the alias; aliases never displace other
    /// entries' canonical names.
    pub fn register(&mut self, entry: SchedulerEntry) -> &mut Self {
        let existing = self
            .by_name
            .get(&entry.info.name)
            .copied()
            .filter(|&i| self.entries[i].info.name == entry.info.name);
        let idx = match existing {
            Some(i) => {
                self.entries[i] = entry;
                i
            }
            None => {
                let i = self.entries.len();
                self.entries.push(entry);
                i
            }
        };
        self.by_name
            .insert(self.entries[idx].info.name.clone(), idx);
        for alias in self.entries[idx].info.aliases.clone() {
            let taken = self
                .by_name
                .get(&alias)
                .is_some_and(|&i| self.entries[i].info.name == alias);
            if !taken {
                self.by_name.insert(alias, idx);
            }
        }
        self
    }

    /// The entry for `name` (canonical name or alias).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&SchedulerEntry> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &SchedulerEntry> {
        self.entries.iter()
    }

    /// All canonical entry names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.info.name.clone()).collect()
    }

    /// Resolves a parsed spec at process count `n` (defaults scale with
    /// it): one name lookup, one parameter validation, producing the
    /// per-run builder the sweep calls per seed.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownName`] (listing the registry contents and the
    /// nearest valid name) or the entry's parameter validation error.
    pub fn resolve(&self, spec: &Spec, n: usize) -> Result<ResolvedSched, SpecError> {
        let Some(entry) = self.get(&spec.name) else {
            return Err(SpecError::UnknownName {
                name: spec.name.clone(),
                kind: "scheduler",
                known: self.names(),
                suggestion: suggest(
                    &spec.name,
                    self.entries.iter().flat_map(|e| {
                        std::iter::once(e.info.name.as_str())
                            .chain(e.info.aliases.iter().map(String::as_str))
                    }),
                ),
            });
        };
        let (canonical, builder) = (entry.resolver)(spec, n)?;
        // Any policy whose canonical spec carries a `crashes` parameter
        // surfaces it here; the value is already validated (the
        // resolver re-emitted it), so the re-parse cannot fail.
        let crashes = canonical.usize_param("crashes", 0)?;
        Ok(ResolvedSched {
            label: canonical.label(),
            seeded: entry.info.seeded,
            crashes,
            builder,
        })
    }

    /// Parses and resolves a spec string in one call.
    ///
    /// # Errors
    ///
    /// As [`Spec::parse`] and [`SchedulerRegistry::resolve`].
    pub fn resolve_str(&self, s: &str, n: usize) -> Result<ResolvedSched, SpecError> {
        self.resolve(&Spec::parse(s)?, n)
    }
}

/// The single positional (legacy) parameter of a spec, if that is the
/// spec's entire parameter list; rejects mixtures of positional and
/// named parameters.
fn positional(spec: &Spec) -> Result<Option<&str>, SpecError> {
    match spec.params.as_slice() {
        [(k, v)] if k.is_empty() => Ok(Some(v)),
        params if params.iter().any(|(k, _)| k.is_empty()) => Err(SpecError::Malformed {
            spec: spec.label(),
            why: "mix of positional and named parameters".to_string(),
        }),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_seven_policies() {
        let reg = SchedulerRegistry::standard();
        assert_eq!(
            reg.names(),
            [
                "sequential",
                "round-robin",
                "random",
                "greedy-adversary",
                "fanlynch",
                "burst",
                "stagger"
            ]
        );
        assert!(reg.get("rr").is_some(), "aliases resolve");
        assert!(reg.get("greedy").is_some());
        assert!(reg.get("adaptive").is_some());
        assert!(reg.get("fan-lynch").is_some());
    }

    #[test]
    fn aliases_resolve_to_canonical_labels() {
        let reg = SchedulerRegistry::global();
        for alias in ["greedy", "adversary", "greedy-adversary"] {
            let r = reg.resolve_str(alias, 4).unwrap();
            assert_eq!(r.label, "greedy-adversary");
            assert!(!r.seeded);
        }
        assert_eq!(reg.resolve_str("seq", 4).unwrap().label, "sequential");
    }

    #[test]
    fn defaults_scale_with_n_and_are_explicit_in_labels() {
        let reg = SchedulerRegistry::global();
        let burst = reg.resolve_str("burst", 8).unwrap();
        assert_eq!(burst.label, "burst:wave=4,gap=16");
        assert_eq!(burst.build(1, 0).name(), "burst(w4,g16)");
        let stagger = reg.resolve_str("stagger", 8).unwrap();
        assert_eq!(stagger.label, "stagger:stride=16");
        assert!(stagger.seeded);
    }

    #[test]
    fn legacy_positional_spellings_still_parse() {
        let reg = SchedulerRegistry::global();
        let burst = reg.resolve_str("burst:2x32", 8).unwrap();
        assert_eq!(burst.label, "burst:wave=2,gap=32");
        let stagger = reg.resolve_str("stagger:5", 8).unwrap();
        assert_eq!(stagger.label, "stagger:stride=5");
        assert!(reg.resolve_str("burst:0x4", 8).is_err());
        assert!(reg.resolve_str("burst:wxg", 8).is_err());
        assert!(reg.resolve_str("stagger:fast", 8).is_err());
    }

    #[test]
    fn resolved_labels_reparse_to_themselves() {
        let reg = SchedulerRegistry::global();
        for s in [
            "sequential",
            "rr",
            "random",
            "greedy",
            "adaptive",
            "fanlynch:patience=12",
            "burst:2x32",
            "stagger",
            "burst",
        ] {
            let label = reg.resolve_str(s, 6).unwrap().label;
            let again = reg.resolve_str(&label, 6).unwrap().label;
            assert_eq!(label, again, "{s}");
        }
    }

    #[test]
    fn unknown_schedulers_suggest_and_list() {
        let err = SchedulerRegistry::global()
            .resolve_str("greedyy", 4)
            .unwrap_err();
        let SpecError::UnknownName {
            known, suggestion, ..
        } = &err
        else {
            panic!("{err}")
        };
        assert_eq!(known.len(), 7);
        assert_eq!(suggestion.as_deref(), Some("greedy"));
        let err = SchedulerRegistry::global()
            .resolve_str("burst:wave=2,depth=9", 4)
            .unwrap_err();
        assert!(err.to_string().contains("wave, gap"), "{err}");
    }

    /// The satellite fix this PR ships: multi-word spec parameters get
    /// useful parse errors — a typo'd *key* suggests the nearest
    /// accepted key at its true (value-stripped) distance, and a
    /// typo'd *name* with parameters attached still suggests the
    /// nearest entry.
    #[test]
    fn key_value_typos_in_multi_word_specs_suggest_the_nearest_key() {
        let reg = SchedulerRegistry::global();
        let err = reg.resolve_str("fanlynch:patiense=3", 4).unwrap_err();
        let SpecError::UnknownParam { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), Some("patience"));
        assert!(
            err.to_string().contains("did you mean `patience`?"),
            "{err}"
        );

        let err = reg.resolve_str("burst:wavee=2,gap=32", 8).unwrap_err();
        let SpecError::UnknownParam { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), Some("wave"));

        // A misspelled *name* carrying multi-word parameters suggests
        // the entry (aliases included in the candidate pool).
        let err = reg.resolve_str("fanlynk:patience=3", 4).unwrap_err();
        let SpecError::UnknownName { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), Some("fanlynch"));

        // Hopeless keys list the accepted set without a junk
        // suggestion.
        let err = reg.resolve_str("fanlynch:zzzzzz=1", 4).unwrap_err();
        let SpecError::UnknownParam { suggestion, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(suggestion.as_deref(), None);
        assert!(err.to_string().contains("accepted: patience"), "{err}");
    }

    #[test]
    fn fanlynch_resolves_builds_and_honors_patience() {
        let reg = SchedulerRegistry::global();
        for alias in ["fanlynch", "adaptive", "fan-lynch"] {
            let r = reg.resolve_str(alias, 4).unwrap();
            assert_eq!(r.label, "fanlynch");
            assert!(!r.seeded);
            assert_eq!(r.build(1, 0).name(), "fanlynch");
        }
        let r = reg.resolve_str("fanlynch:patience=9", 4).unwrap();
        assert_eq!(r.label, "fanlynch:patience=9");
        assert_eq!(r.build(1, 7).name(), "fanlynch");
        let r = reg.resolve_str("fanlynch:patience=9,seed=3", 4).unwrap();
        assert_eq!(r.label, "fanlynch:patience=9,seed=3");
    }

    /// `fanlynch:crashes=K` carries a crash budget for fault-aware
    /// drivers: it canonicalizes into the label, surfaces on the
    /// resolved handle, and leaves the built (crash-free) policy alone.
    #[test]
    fn fanlynch_crash_budgets_resolve_and_surface() {
        let reg = SchedulerRegistry::global();
        let r = reg.resolve_str("fanlynch:crashes=2", 4).unwrap();
        assert_eq!(r.label, "fanlynch:crashes=2");
        assert_eq!(r.crashes, 2);
        assert_eq!(r.build(1, 0).name(), "fanlynch");
        let r = reg.resolve_str("fanlynch:patience=9,crashes=1", 4).unwrap();
        assert_eq!(r.label, "fanlynch:patience=9,crashes=1");
        assert_eq!(r.crashes, 1);
        // Crash-free spellings report a zero budget everywhere.
        for s in ["fanlynch", "greedy", "rr", "random", "burst"] {
            assert_eq!(reg.resolve_str(s, 4).unwrap().crashes, 0, "{s}");
        }
        // Labels carrying a budget reparse to themselves.
        let label = reg
            .resolve_str("adaptive:crashes=3,seed=1", 4)
            .unwrap()
            .label;
        assert_eq!(reg.resolve_str(&label, 4).unwrap().label, label);
    }

    /// Out-of-range parameter *values* fail as loudly as unknown keys:
    /// negative budgets don't wrap, zero patience doesn't disable the
    /// starvation valve, and the error names the expected range.
    #[test]
    fn out_of_range_param_values_are_rejected_with_the_expected_range() {
        let reg = SchedulerRegistry::global();
        let err = reg.resolve_str("fanlynch:crashes=-1", 4).unwrap_err();
        let SpecError::InvalidParam { key, expected, .. } = &err else {
            panic!("{err}")
        };
        assert_eq!(key, "crashes");
        assert!(expected.contains("non-negative integer"), "{err}");

        for spec in ["fanlynch:patience=0", "greedy-adversary:patience=0"] {
            let err = reg.resolve_str(spec, 4).unwrap_err();
            let SpecError::InvalidParam { key, expected, .. } = &err else {
                panic!("{err}")
            };
            assert_eq!(key, "patience", "{spec}");
            assert!(expected.contains(">= 1"), "{spec}: {err}");
        }
        // The bound holds for the long spelling too, and valid values
        // at the boundary pass.
        assert!(reg.resolve_str("fanlynch:patience=1", 4).is_ok());
        assert!(reg.resolve_str("greedy:patience=1", 4).is_ok());
    }

    /// `seeded: false` is a behavioral contract, not just metadata:
    /// the built scheduler must ignore the per-run sweep seed (the
    /// tie-break seed is the explicit `seed=` parameter instead).
    #[test]
    fn fanlynch_ignores_the_sweep_seed() {
        use exclusion_shmem::sched::run_scheduler;
        use exclusion_shmem::testing::Alternator;
        let reg = SchedulerRegistry::global();
        let alg = Alternator::new(3);
        let r = reg.resolve_str("fanlynch", 3).unwrap();
        let a = run_scheduler(&alg, r.build(2, 5).as_mut(), 2, 100_000).unwrap();
        let b = run_scheduler(&alg, r.build(2, 9).as_mut(), 2, 100_000).unwrap();
        assert_eq!(a, b, "sweep seeds must not change the schedule");
        // The spec-level seed is the supported perturbation knob.
        let seeded = reg.resolve_str("fanlynch:seed=3", 3).unwrap();
        assert_eq!(seeded.label, "fanlynch:seed=3");
        let c = run_scheduler(&alg, seeded.build(2, 5).as_mut(), 2, 100_000).unwrap();
        assert_eq!(a.critical_order().len(), c.critical_order().len());
    }

    #[test]
    fn registering_over_an_alias_does_not_clobber_its_owner() {
        let mut reg = SchedulerRegistry::standard();
        // "seq" is an alias of "sequential"; a downstream entry *named*
        // "seq" must become its own entry, not overwrite the builtin.
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "seq".into(),
                aliases: vec![],
                summary: "impostor".into(),
                seeded: false,
                params: vec![],
            },
            |spec, _n| {
                spec.expect_params(&[], false)?;
                Ok((
                    Spec::new("seq"),
                    Arc::new(|_p, _s| Box::new(RoundRobin::new()) as _),
                ))
            },
        ));
        // The builtin survives under its canonical name…
        assert_eq!(
            reg.resolve_str("sequential", 4).unwrap().label,
            "sequential"
        );
        // …while the spelling "seq" now belongs to the new entry.
        assert_eq!(reg.resolve_str("seq", 4).unwrap().label, "seq");
        assert_eq!(reg.names().len(), 8, "appended, not replaced");
        // And a new entry's alias cannot displace an existing name.
        reg.register(SchedulerEntry::new(
            SchedulerInfo {
                name: "other".into(),
                aliases: vec!["random".into()],
                summary: "alias squatter".into(),
                seeded: false,
                params: vec![],
            },
            |spec, _n| {
                spec.expect_params(&[], false)?;
                Ok((
                    Spec::new("other"),
                    Arc::new(|_p, _s| Box::new(RoundRobin::new()) as _),
                ))
            },
        ));
        assert_eq!(reg.resolve_str("random", 4).unwrap().label, "random");
    }

    #[test]
    fn greedy_patience_parameter_reaches_the_scheduler() {
        let reg = SchedulerRegistry::global();
        let r = reg.resolve_str("greedy:patience=3", 4).unwrap();
        assert_eq!(r.label, "greedy-adversary:patience=3");
        // Just building it suffices here; behavior is pinned in shmem.
        assert_eq!(r.build(1, 0).name(), "greedy-adversary");
    }
}
