//! Drive the adversarial scenario engine: sweep the register-only suite
//! under the greedy cost-maximizing adversary, random fair schedules,
//! and burst/staggered arrivals — sharded across all cores — and show
//! how much SC cost each scheduling pattern extracts over the canonical
//! (no-contention) baseline.
//!
//! ```text
//! cargo run --release --example adversary_sweep [n] [passages]
//! ```

use exclusion::workload::{sweep, Scenario, SchedSpec, SweepOptions};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let passages: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let algorithms = [
        "dekker-tree",
        "peterson",
        "bakery",
        "dijkstra",
        "burns-lynch",
    ];
    let patterns = [
        SchedSpec::sequential(),
        SchedSpec::random(),
        SchedSpec::greedy(),
        SchedSpec::burst(n.div_ceil(2).max(1), 2 * n),
        SchedSpec::stagger(2 * n),
    ];

    let mut scenarios = Vec::new();
    for alg in algorithms {
        for sched in &patterns {
            scenarios.push(
                Scenario::builder(alg, n)
                    .passages(passages)
                    .sched(sched.clone())
                    .seeds(1..=12)
                    .build()
                    .expect("valid scenario"),
            );
        }
    }

    let report = sweep(&scenarios, &SweepOptions::default());
    println!("{}", report.to_text());

    println!("adversary pressure (max SC cost / canonical sequential SC cost):");
    for alg in algorithms {
        let sc_of = |sched: &str| {
            report
                .summaries
                .iter()
                .find(|s| s.algorithm == alg && s.scheduler == sched)
                .map_or(0, |s| s.sc.max)
        };
        let base = sc_of("sequential").max(1);
        println!(
            "{:>12}: greedy {:>5.2}x   random {:>5.2}x   burst {:>5.2}x   stagger {:>5.2}x",
            alg,
            sc_of("greedy-adversary") as f64 / base as f64,
            sc_of("random") as f64 / base as f64,
            report
                .summaries
                .iter()
                .find(|s| s.algorithm == alg && s.scheduler.starts_with("burst"))
                .map_or(0, |s| s.sc.max) as f64
                / base as f64,
            report
                .summaries
                .iter()
                .find(|s| s.algorithm == alg && s.scheduler.starts_with("stagger"))
                .map_or(0, |s| s.sc.max) as f64
                / base as f64,
        );
    }
}
