//! Compare the whole simulated algorithm suite — register-only locks
//! and RMW-based locks — under all three cost models, uncontended and
//! contended.
//!
//! ```text
//! cargo run --release --example compare_locks [n]
//! ```

use exclusion::cost::all_costs;
use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::sched::{run_random, run_sequential};
use exclusion::shmem::{Automaton, ProcessId};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let order: Vec<_> = ProcessId::all(n).collect();

    println!("canonical sequential executions, n = {n}:");
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "steps", "SC", "CC", "DSM"
    );
    for alg in AnyAlgorithm::full_suite(n) {
        let exec = run_sequential(&alg, &order, 10_000_000).expect("canonical run");
        let (sc, cc, dsm) = all_costs(&alg, &exec).expect("replay");
        println!(
            "{:>14} {:>8} {:>8} {:>8} {:>8}",
            alg.name(),
            exec.shared_accesses(),
            sc.total(),
            cc.total(),
            dsm.total()
        );
    }

    println!("\ncontended random schedules (3 passages each, 4 seeds), n = {n}:");
    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "algorithm", "SC/passage", "CC/passage", "max SC/process"
    );
    for alg in AnyAlgorithm::full_suite(n) {
        let mut sc_sum = 0usize;
        let mut cc_sum = 0usize;
        let mut max_proc = 0usize;
        let seeds = 4u64;
        for seed in 0..seeds {
            let exec = run_random(&alg, 3, 50_000_000, seed).expect("run");
            let (sc, cc, _) = all_costs(&alg, &exec).expect("replay");
            sc_sum += sc.total();
            cc_sum += cc.total();
            max_proc = max_proc.max(sc.max_process());
        }
        let passages = (n * 3 * seeds as usize) as f64;
        println!(
            "{:>14} {:>12.1} {:>12.1} {:>14}",
            alg.name(),
            sc_sum as f64 / passages,
            cc_sum as f64 / passages,
            max_proc
        );
    }
    println!(
        "\nThe SC model (the paper's) only charges state-changing accesses, so\n\
         single-register busy-waits are free; under contention the tournaments\n\
         pay Θ(log n) per passage and the scanners Θ(n)."
    );
}
