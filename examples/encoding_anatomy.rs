//! Anatomy of one encoding: dump the metasteps, the partial order, the
//! cell table, and the bit string for a small instance — the paper's
//! Figures 1–3 made visible.
//!
//! ```text
//! cargo run --release --example encoding_anatomy
//! ```

use exclusion::lb::{construct, encode, Cell, ConstructConfig, MetastepKind, Permutation};
use exclusion::mutex::Peterson;
use exclusion::shmem::{Automaton, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3;
    let alg = Peterson::new(n);
    let pi = Permutation::reversed(n);
    println!("algorithm: {} with n = {n}, π = {pi}\n", alg.name());

    let c = construct(&alg, &pi, &ConstructConfig::default())?;

    println!("metasteps (id, kind, register, contents):");
    for m in c.metasteps() {
        let reg = m
            .register()
            .map(|r| alg.register_name(r))
            .unwrap_or_else(|| "-".into());
        let desc = match m.kind() {
            MetastepKind::Crit => format!("{}", m.crit().expect("crit step")),
            MetastepKind::Read => format!("{}", m.reads()[0]),
            MetastepKind::Write => {
                let mut s = String::new();
                for w in m.writes() {
                    s.push_str(&format!("{w} ⟨hidden⟩  "));
                }
                s.push_str(&format!("{} ⟨wins⟩", m.winner().expect("winner")));
                for r in m.reads() {
                    s.push_str(&format!("  {r}"));
                }
                if !m.pread().is_empty() {
                    s.push_str(&format!("  pread={:?}", m.pread()));
                }
                s
            }
        };
        println!(
            "  {:>4}  {:?}  {:>12}  {desc}",
            m.id().to_string(),
            m.kind(),
            reg
        );
    }

    println!("\npartial-order edges (direct):");
    for m in c.metasteps() {
        let succs = c.dag().succs(m.id());
        if !succs.is_empty() {
            let list: Vec<String> = succs.iter().map(ToString::to_string).collect();
            println!("  {} ≺ {}", m.id(), list.join(", "));
        }
    }

    let enc = encode(&c);
    println!("\ncell table (one column per process):");
    for p in ProcessId::all(n) {
        let cells: Vec<String> = enc
            .column(p)
            .iter()
            .map(|c| match c {
                Cell::Read => "R".into(),
                Cell::Write => "W".into(),
                Cell::Winner { pr, r, w } => format!("W·sig(pr={pr},r={r},w={w})"),
                Cell::Preread => "PR".into(),
                Cell::SoloRead => "SR".into(),
                Cell::Crit => "C".into(),
            })
            .collect();
        println!("  {p}: {}", cells.join(" # "));
    }

    let (bytes, bits) = enc.to_bits();
    println!(
        "\nserialized: {bits} bits for C = {} state changes",
        c.cost()
    );
    let bit_string: String = (0..bits)
        .map(|i| {
            if bytes[i / 8] >> (i % 8) & 1 == 1 {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    println!("  {bit_string}");
    println!(
        "\nThe table records only step types and signature counts — no registers,\n\
         values or process ids — yet together with the algorithm's transition\n\
         function it reconstructs α_π exactly (run the quickstart example)."
    );
    Ok(())
}
