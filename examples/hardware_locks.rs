//! Exercise the real-hardware lock family under genuine thread
//! contention and print per-acquisition latency.
//!
//! ```text
//! cargo run --release --example hardware_locks [iters-per-thread]
//! ```

use exclusion::spin::harness::{all_locks, torture};
use std::time::Instant;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host parallelism: {cpus} (oversubscribed runs measure handoff under preemption)\n");
    println!(
        "{:>14} {:>9} {:>12} {:>12} {:>10}",
        "lock", "threads", "total ops", "ns/op", "violations"
    );
    for threads in [1usize, 2, 4] {
        for lock in all_locks(threads) {
            let start = Instant::now();
            let report = torture(lock.as_ref(), threads, iters);
            let elapsed = start.elapsed();
            let ops = (threads * iters) as u64;
            assert_eq!(report.counter, ops, "{} lost updates!", lock.name());
            println!(
                "{:>14} {:>9} {:>12} {:>12.1} {:>10}",
                lock.name(),
                threads,
                ops,
                elapsed.as_nanos() as f64 / ops as f64,
                report.violations
            );
        }
        println!();
    }
    println!(
        "All locks preserve exclusion (violations = 0, no lost updates); the\n\
         interesting column is ns/op as contention grows — compare the queue\n\
         locks against TAS and the register-only tournaments."
    );
}
