//! The Ω(n log n) lower bound, demonstrated: sweep n, sample
//! permutations, and watch the worst-case construction cost track the
//! information-theoretic floor.
//!
//! ```text
//! cargo run --release --example lower_bound_demo [algorithm]
//! ```
//!
//! `algorithm` is one of `dekker-tree` (default), `peterson`, `bakery`,
//! `filter`, `dijkstra`, `burns-lynch`.

use exclusion::lb::{construct, encode, log2_factorial, ConstructConfig, Permutation};
use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::Automaton;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dekker-tree".into());
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "n", "min C", "avg C", "max C", "log2(n!)", "max bits", "bits/C"
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let Some(alg) = AnyAlgorithm::suite(n)
            .into_iter()
            .find(|a| a.name() == wanted)
        else {
            eprintln!("unknown algorithm `{wanted}`");
            std::process::exit(2);
        };
        if alg.name() == "filter" && n > 16 {
            continue; // cubic baseline gets slow beyond this
        }
        let mut rng = StdRng::seed_from_u64(7 * n as u64);
        let mut perms = vec![Permutation::identity(n), Permutation::reversed(n)];
        perms.extend((0..8).map(|_| Permutation::random(n, &mut rng)));
        let mut costs = Vec::new();
        let mut max_bits = 0usize;
        for pi in &perms {
            let c = construct(&alg, pi, &ConstructConfig::default())
                .unwrap_or_else(|e| panic!("{pi}: {e}"));
            max_bits = max_bits.max(encode(&c).bit_len());
            costs.push(c.cost());
        }
        let min = costs.iter().min().unwrap();
        let max = costs.iter().max().unwrap();
        let avg = costs.iter().sum::<usize>() as f64 / costs.len() as f64;
        println!(
            "{n:>4} {min:>8} {avg:>8.1} {max:>8} {:>10.1} {max_bits:>10} {:>8.2}",
            log2_factorial(n),
            max_bits as f64 / *max as f64,
        );
    }
    println!(
        "\nTheorem 7.5: some execution must cost ≥ log2(n!)/κ state changes;\n\
         the max-C column grows like n·log n for the tournament locks and\n\
         like n² for the scan-based ones — the lower bound is universal,\n\
         the upper bound is what separates algorithms."
    );
}
