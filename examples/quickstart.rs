//! Quickstart: run the paper's whole pipeline once.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exclusion::cost::sc_cost;
use exclusion::lb::{construct, decode, encode, ConstructConfig, Encoding, Permutation};
use exclusion::mutex::DekkerTournament;
use exclusion::shmem::Automaton;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let alg = DekkerTournament::new(n);
    let pi = Permutation::unrank(n, 31_415);
    println!("algorithm : {}", alg.name());
    println!("π         : {pi}");

    // 1. Construct: an execution in which the critical sections happen
    //    in order π and later processes are invisible to earlier ones.
    let c = construct(&alg, &pi, &ConstructConfig::default())?;
    let alpha = c.linearize();
    println!("metasteps : {}", c.metasteps().len());
    println!("steps     : {}", alpha.len());
    assert!(alpha.is_canonical(n));
    assert_eq!(alpha.critical_order(), pi.order());

    // 2. The SC cost of that execution, two ways: the metastep
    //    accounting and a replay under Definition 3.1 — they agree.
    let cost = sc_cost(&alg, &alpha)?.total();
    assert_eq!(cost, c.cost());
    println!("C(α_π)    : {cost} state changes");

    // 3. Encode to a self-delimiting bit string of O(C) bits …
    let (bytes, bits) = encode(&c).to_bits();
    println!(
        "|E_π|     : {bits} bits ({:.2} bits per unit of cost)",
        bits as f64 / cost as f64
    );

    // 4. … and decode it back — without π — recovering a linearization
    //    whose critical-section order is exactly π.
    let enc = Encoding::from_bits(&bytes, bits, n)?;
    let decoded = decode(&alg, &enc)?;
    assert!(c.is_linearization(&decoded));
    assert_eq!(decoded.critical_order(), pi.order());
    println!(
        "decoded   : {} steps, critical order recovered ✓",
        decoded.len()
    );

    Ok(())
}
