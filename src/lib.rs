//! `exclusion` — an executable reproduction of Fan & Lynch, *An
//! Ω(n log n) Lower Bound on the Cost of Mutual Exclusion* (PODC 2006).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`shmem`] — the paper's shared-memory model: deterministic process
//!   automata over registers, executions, replay, schedulers, and an
//!   explicit-state model checker;
//! * [`mutex`] — register-only mutual exclusion algorithms as automata
//!   (tournaments, bakery, filter, Dijkstra, Burns–Lynch, and
//!   deliberately broken locks);
//! * [`cost`] — the state-change (SC) cost model of Definition 3.1,
//!   plus cache-coherent (CC) and distributed-shared-memory (DSM)
//!   accounting;
//! * [`bound`] — the adaptive lower-bound adversary: the paper's
//!   information-theoretic strategy as an executable scheduler
//!   (`fanlynch`), the `force` game driver, and forced-cost curves
//!   fitted against `c·n·log₂n` at scales exhaustive search cannot
//!   reach;
//! * [`explore`] — bounded exhaustive state-space exploration:
//!   certified mutual-exclusion and deadlock-freedom verdicts (with
//!   replayable counterexamples for broken locks) and exact worst-case
//!   cost tables with witness schedules;
//! * [`lb`] — the lower-bound machinery itself: `construct` (Figure 1),
//!   `encode` (Figure 2), `decode` (Figure 3), and validators for every
//!   theorem;
//! * [`serve`] — the open-stream lock-service engine: composable
//!   seeded arrival models (Poisson, bursty, diurnal), a bounded
//!   in-flight ring with deadlines and abandonment, and sharded
//!   bit-identical reports with bounded-memory live percentiles;
//! * [`spin`] — real-hardware locks on `std::sync::atomic` mirroring
//!   the simulated family;
//! * [`workload`] — the adversarial scenario engine: pluggable
//!   schedulers (greedy cost-maximizing adversary, burst and staggered
//!   arrivals), scenario grids, and parallel sharded sweeps pricing
//!   executions under all three cost models;
//! * [`trace`] — the observability layer: structured probe events from
//!   every engine (cost charges, awareness merges, explorer layers),
//!   deterministic metrics aggregation, Chrome trace-event export, and
//!   count-throttled live progress — zero overhead when off.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! the paper-to-code mapping, and `EXPERIMENTS.md` for the reproduced
//! results.
//!
//! # Quickstart
//!
//! Run the paper's pipeline end to end for one permutation:
//!
//! ```
//! use exclusion::lb::{construct, decode, encode, ConstructConfig, Permutation};
//! use exclusion::mutex::DekkerTournament;
//!
//! let alg = DekkerTournament::new(8);
//! let pi = Permutation::unrank(8, 12_345);
//!
//! // Construct the adversarial execution α_π …
//! let c = construct(&alg, &pi, &ConstructConfig::default())?;
//! // … compress it to O(C(α_π)) bits …
//! let (bytes, bits) = encode(&c).to_bits();
//! println!("C = {} state changes, |E| = {bits} bits", c.cost());
//! // … and decompress it without knowing π.
//! let enc = exclusion::lb::Encoding::from_bits(&bytes, bits, 8)?;
//! let alpha = decode(&alg, &enc)?;
//! assert_eq!(alpha.critical_order(), pi.order());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use exclusion_bound as bound;
pub use exclusion_cost as cost;
pub use exclusion_explore as explore;
pub use exclusion_lb as lb;
pub use exclusion_mutex as mutex;
pub use exclusion_serve as serve;
pub use exclusion_shmem as shmem;
pub use exclusion_spin as spin;
pub use exclusion_trace as trace;
pub use exclusion_workload as workload;
