//! Determinism of the adaptive adversary: same algorithm, `n` and seed
//! ⇒ the same schedule and the same costs, across repeated runs, fresh
//! and reused scheduler instances, and any sweep worker count. The
//! adversary's state is all index-addressed vectors (awareness
//! partition, last-writer table, valve clocks), so there is no
//! hash-iteration order to leak into picks; these properties pin that.

use exclusion::bound::{force, force_crash, AdaptiveAdversary, BoundConfig};
use exclusion::cost::run_priced;
use exclusion::explore::{certify_recoverable, conformance_registry, ExploreConfig};
use exclusion::mutex::registry::AlgorithmRegistry;
use exclusion::shmem::sched::Traced;
use exclusion::shmem::{faulted_script, run_faulted, DynRef, FaultPlan};
use exclusion::workload::{sweep, Scenario, SchedSpec, SweepOptions};
use proptest::prelude::*;

/// The registry algorithms cheap enough for a property grid.
const ALGORITHMS: [&str; 8] = [
    "dekker-tree",
    "peterson",
    "bakery",
    "dijkstra",
    "burns-lynch",
    "tas-sim",
    "ttas-sim",
    "ticket-sim",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two fresh adversaries with the same seed produce the identical
    /// pick sequence and the identical priced run — and a *reused*
    /// adversary reproduces it again (per-run state resets at step 0).
    #[test]
    fn same_seed_same_schedule_same_cost(
        alg_idx in 0..ALGORITHMS.len(),
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(ALGORITHMS[alg_idx], n).unwrap().automaton;
        let dyn_ref = DynRef(alg.as_ref());
        let mut first = Traced::new(AdaptiveAdversary::new(seed));
        let priced_first = run_priced(&dyn_ref, &mut first, 1, 1_000_000).unwrap();
        let mut second = Traced::new(AdaptiveAdversary::new(seed));
        let priced_second = run_priced(&dyn_ref, &mut second, 1, 1_000_000).unwrap();
        prop_assert_eq!(first.picks(), second.picks());
        prop_assert_eq!(&priced_first, &priced_second);
        // Reuse: the same instance replays its schedule from the top.
        let priced_again = run_priced(&dyn_ref, &mut second, 1, 1_000_000).unwrap();
        prop_assert_eq!(first.picks(), second.picks());
        prop_assert_eq!(&priced_first, &priced_again);
    }

    /// The full game driver is a pure function of (algorithm, n,
    /// config): schedules, costs, winners — everything.
    #[test]
    fn force_is_reproducible(
        alg_idx in 0..ALGORITHMS.len(),
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(ALGORITHMS[alg_idx], n).unwrap().automaton;
        let cfg = BoundConfig { seed, ..BoundConfig::default() };
        let a = force(alg.as_ref(), &cfg);
        let b = force(alg.as_ref(), &cfg);
        prop_assert_eq!(a, b);
    }

    /// Sweeping `fanlynch` scenarios is bit-identical across worker
    /// counts — the adversary brings no shared mutable state into the
    /// sweep's sharding.
    #[test]
    fn sweep_results_are_identical_across_worker_counts(
        alg_idx in 0..ALGORITHMS.len(),
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        let scenarios: Vec<Scenario> = [ALGORITHMS[alg_idx], "bakery"]
            .iter()
            .map(|name| {
                Scenario::builder(*name, n)
                    .sched(SchedSpec::parse("fanlynch").unwrap())
                    .seeds([seed])
                    .build()
                    .unwrap()
            })
            .collect();
        let opts = |threads| SweepOptions { threads, ..SweepOptions::default() };
        let one = sweep(&scenarios, &opts(1));
        let four = sweep(&scenarios, &opts(4));
        prop_assert_eq!(&one, &four);
        for record in &one.records {
            prop_assert!(record.error.is_none(), "{:?}", record.error);
            prop_assert!(record.sc > 0);
        }
    }
}

/// The recoverable locks cheap enough for a crash property grid.
const RECOVERABLE: [&str; 2] = ["rpeterson", "rtas"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The crash-budget game is a pure function of (algorithm, n, seed,
    /// budget): schedules, injected crashes, witnesses and both RMR
    /// columns — and with budget 0 the game *is* the crash-free one.
    #[test]
    fn crash_games_are_pure_functions_of_their_inputs(
        alg_idx in 0..RECOVERABLE.len(),
        n in 2usize..6,
        seed in any::<u64>(),
        crashes in 0usize..3,
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(RECOVERABLE[alg_idx], n).unwrap().automaton;
        let cfg = BoundConfig { seed, crashes, ..BoundConfig::default() };
        let a = force_crash(alg.as_ref(), &cfg);
        let b = force_crash(alg.as_ref(), &cfg);
        prop_assert_eq!(&a, &b);
        if crashes == 0 {
            let plain = force(alg.as_ref(), &BoundConfig { seed, ..BoundConfig::default() });
            prop_assert_eq!(a.forced, [plain.forced[1], plain.forced[2]]);
            prop_assert_eq!(a.injected, 0);
        }
    }

    /// A faulted run against the seeded adversary is reproducible two
    /// ways: rerunning the same (seed, plan) pair, and replaying the
    /// recorded `Script` + `FaultPlan` artifacts — both bit-identical.
    #[test]
    fn faulted_runs_replay_bit_identically(
        alg_idx in 0..RECOVERABLE.len(),
        n in 2usize..6,
        seed in any::<u64>(),
        crashes in 0usize..3,
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(RECOVERABLE[alg_idx], n).unwrap().automaton;
        let dyn_ref = DynRef(alg.as_ref());
        let run = |(mut sched, mut plan): (AdaptiveAdversary, FaultPlan)| {
            run_faulted(&dyn_ref, &mut sched, &mut plan, 1, 1_000_000).unwrap()
        };
        let fresh = || (AdaptiveAdversary::new(seed), FaultPlan::in_critical(crashes));
        let exec = run(fresh());
        prop_assert_eq!(&exec, &run(fresh()));
        let (mut script, mut replan) = faulted_script(exec.steps());
        let replay = run_faulted(&dyn_ref, &mut script, &mut replan, 1, 1_000_000).unwrap();
        prop_assert_eq!(&exec, &replay);
    }
}

/// Crash certification explores a product graph in parallel, but its
/// verdict — state count, depth, and the minimal counterexample when
/// there is one — must not depend on the worker count.
#[test]
fn crash_certification_is_worker_count_independent() {
    let reg = conformance_registry();
    for name in ["rpeterson", "rtas", "broken-recover"] {
        let alg = reg.resolve_str(name, 2).unwrap().automaton;
        let cfg = |workers| ExploreConfig {
            workers,
            ..ExploreConfig::default()
        };
        let one = certify_recoverable(alg.as_ref(), 2, &cfg(1));
        let four = certify_recoverable(alg.as_ref(), 2, &cfg(4));
        assert_eq!(one, four, "{name}");
    }
}

/// The starvation valve's `4·n + 4` default is a per-run quantity for
/// both portfolio strategies: a scheduler reused across differently
/// sized algorithms re-derives it, so the second run is
/// indistinguishable from a fresh scheduler's (Peterson's bouncing
/// spin makes the valve load-bearing in these schedules).
#[test]
fn valve_defaults_rederive_per_run_for_both_adversaries() {
    use exclusion::mutex::Peterson;
    use exclusion::shmem::sched::{run_scheduler, GreedyAdversary, Scheduler};
    let big = Peterson::new(6);
    let small = Peterson::new(2);
    type FreshSched = fn() -> Box<dyn Scheduler>;
    let fresh_of: [(&str, FreshSched); 2] = [
        ("fanlynch", || Box::new(AdaptiveAdversary::new(0))),
        ("greedy", || Box::new(GreedyAdversary::new())),
    ];
    for (name, fresh) in fresh_of {
        let mut reused = fresh();
        let _ = run_scheduler(&big, reused.as_mut(), 1, 1_000_000).unwrap();
        let replay = run_scheduler(&small, reused.as_mut(), 2, 1_000_000).unwrap();
        let once = run_scheduler(&small, fresh().as_mut(), 2, 1_000_000).unwrap();
        assert_eq!(replay, once, "{name}");
    }
}

/// Different seeds are *allowed* to differ (the seed perturbs
/// tie-breaks), but every seed must dominate nothing less than its own
/// replay — and the default seed is pinned as the canonical curve, so
/// report consumers can rely on it.
#[test]
fn seeds_perturb_tiebreaks_without_breaking_determinism() {
    let registry = AlgorithmRegistry::global();
    let alg = registry.resolve_str("peterson", 4).unwrap().automaton;
    for seed in [0u64, 1, 42, u64::MAX] {
        let cfg = BoundConfig {
            seed,
            ..BoundConfig::default()
        };
        let a = force(alg.as_ref(), &cfg);
        let b = force(alg.as_ref(), &cfg);
        assert_eq!(a, b, "seed {seed}");
        assert!(a.forced[0] >= a.greedy[0], "seed {seed}");
    }
}
