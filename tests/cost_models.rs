//! Integration: cost-model relations across the suite.

use exclusion::cost::{all_costs, cc_cost, dsm_cost, sc_cost};
use exclusion::mutex::{AnyAlgorithm, Bakery, DekkerTournament, Filter};
use exclusion::shmem::sched::{run_random, run_sequential};
use exclusion::shmem::{Automaton, Execution, ProcessId};

fn canonical<A: Automaton>(alg: &A) -> Execution {
    let order: Vec<_> = ProcessId::all(alg.processes()).collect();
    run_sequential(alg, &order, 10_000_000).expect("canonical run")
}

#[test]
fn canonical_growth_separates_the_classes() {
    // Θ(n log n) vs Θ(n²): at n = 32 the tournament must be strictly
    // cheaper than every scanner; by n = 64 decisively so.
    for n in [32usize, 64] {
        let tournament = sc_cost(
            &DekkerTournament::new(n),
            &canonical(&DekkerTournament::new(n)),
        )
        .unwrap()
        .total();
        let bakery = sc_cost(&Bakery::new(n), &canonical(&Bakery::new(n)))
            .unwrap()
            .total();
        assert!(
            2 * tournament < bakery,
            "n = {n}: tournament {tournament} vs bakery {bakery}"
        );
    }
}

#[test]
fn filter_is_cubic() {
    let c8 = sc_cost(&Filter::new(8), &canonical(&Filter::new(8)))
        .unwrap()
        .total();
    let c16 = sc_cost(&Filter::new(16), &canonical(&Filter::new(16)))
        .unwrap()
        .total();
    // Doubling n multiplies a cubic cost by ~8; allow slack for the
    // lower-order terms.
    assert!(
        c16 >= 6 * c8,
        "filter: c8 = {c8}, c16 = {c16} — expected ~8x growth"
    );
}

#[test]
fn sc_dominates_cc_when_spins_change_state() {
    // Peterson's alternating two-register spin changes state on every
    // read, so SC ≥ CC under contention.
    let alg = exclusion::mutex::Peterson::new(4);
    for seed in 0..10 {
        let exec = run_random(&alg, 2, 50_000_000, seed).unwrap();
        let (sc, cc, _) = all_costs(&alg, &exec).unwrap();
        assert!(sc.total() >= cc.total(), "seed {seed}");
    }
}

#[test]
fn cc_dominates_sc_for_single_register_spins() {
    // Dekker-tree's spins are free under SC once parked, but each
    // armed spin still pays one CC miss; the two models stay within a
    // small factor on canonical runs.
    let alg = DekkerTournament::new(16);
    let exec = canonical(&alg);
    let (sc, cc, _) = all_costs(&alg, &exec).unwrap();
    assert_eq!(
        sc.total(),
        cc.total(),
        "no contention: both charge every access"
    );
}

#[test]
fn dsm_homes_reduce_cost_for_local_protocols() {
    for n in [4usize, 8] {
        let alg = Bakery::new(n);
        let exec = canonical(&alg);
        let sc = sc_cost(&alg, &exec).unwrap().total();
        let dsm = dsm_cost(&alg, &exec).unwrap().total();
        assert!(dsm < sc, "n = {n}: dsm {dsm} < sc {sc}");
    }
}

#[test]
fn per_process_budgets_are_consistent() {
    for alg in AnyAlgorithm::suite(6) {
        let exec = canonical(&alg);
        let sc = sc_cost(&alg, &exec).unwrap();
        let total: usize = ProcessId::all(6).map(|p| sc.process(p)).sum();
        assert_eq!(total, sc.total(), "{}", alg.name());
        let cc = cc_cost(&alg, &exec).unwrap();
        assert!(cc.max_process() * 6 >= cc.total(), "{}", alg.name());
    }
}
