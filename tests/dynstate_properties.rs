//! Property coverage for the erased-state contract the explorer's
//! transposition table leans on: `DynState` hashing and equality agree
//! with the concrete states under both representations (inline words
//! and boxed), and `System` snapshots round-trip bit-identically.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::dynamic::{DynState, WordState};
use exclusion::shmem::sched::{Scheduler, Script};
use exclusion::shmem::{DynRef, ProcessId, SchedContext, System, ViewTable};
use proptest::prelude::*;

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Boxed erasure forwards `hash` to the typed state's own impl and
    /// `eq` to the typed equality: a boxed `DynState` is
    /// hash/eq-indistinguishable from its concrete counterpart.
    #[test]
    fn boxed_states_agree_with_their_concrete_counterparts(
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let da = DynState::boxed(a);
        let db = DynState::boxed(b);
        prop_assert_eq!(da == db, a == b);
        prop_assert_eq!(hash_of(&da), hash_of(&a), "boxed hash == typed hash");
        if a != b {
            prop_assert!(hash_of(&da) != hash_of(&db));
        }
    }

    /// Inline (word-packed) erasure: equality mirrors the concrete
    /// equality, `pack` stays injective (distinct states ⇒ distinct
    /// words), the packed words round-trip, and hashing mirrors the
    /// words exactly — the SC model's state-equality contract.
    #[test]
    fn packed_states_agree_with_their_concrete_counterparts(
        a in any::<u32>(),
        b in any::<u32>(),
        flag in any::<bool>(),
    ) {
        let pa = (a, flag);
        let pb = (b, flag);
        let da = DynState::from_words(&pa);
        let db = DynState::from_words(&pb);
        prop_assert_eq!(da == db, pa == pb);
        prop_assert_eq!(da.to_words::<(u32, bool)>(), Some(pa), "round-trip");
        // Inline states hash their words, so the hash agrees with the
        // packed image of the concrete state.
        let mut words = [0u64; 2];
        pa.pack(&mut words);
        prop_assert_eq!(hash_of(&da), hash_of(&&words[..]));
        if pa != pb {
            prop_assert!(da.words() != db.words(), "pack must be injective");
        }
    }

    /// Snapshot → restore → snapshot is bit-identical (equal and
    /// equal-hashing) at every prefix of a real run, through the erased
    /// dyn path, and the restored system continues exactly like the
    /// original.
    #[test]
    fn snapshots_roundtrip_bit_identically_along_real_runs(
        alg_idx in 0usize..11,
        n in 2usize..=3,
        seed in any::<u64>(),
        cut in 1usize..40,
    ) {
        let registry = AlgorithmRegistry::global();
        let name = &registry.names()[alg_idx];
        let handle = registry.resolve_str(name, n).expect("resolves").automaton;
        let dref = DynRef(handle.as_ref());

        // Drive a seeded random run and stop at the cut point.
        let mut sched = exclusion::shmem::sched::Random::new(seed);
        let mut sys = System::new(&dref);
        let mut table = ViewTable::new(&sys, 1, sched.wants_step_previews());
        let mut picks = Vec::new();
        for step in 0..cut {
            let ctx = SchedContext { step, target_passages: 1, views: table.views() };
            let Some(p) = sched.pick(&ctx) else { break };
            let done = sys.step(p);
            table.apply(&sys, 1, &done);
            picks.push(p);
        }

        let snap = sys.snapshot();
        let mut restored = System::from_snapshot(&dref, &snap);
        prop_assert_eq!(restored.snapshot(), snap.clone(), "{}: restore must be exact", name);
        prop_assert_eq!(hash_of(&restored.snapshot()), hash_of(&snap), "{}", name);

        // Both systems take the same continuation and stay in lockstep.
        for p in ProcessId::all(n) {
            if sys.passages(p) >= 1 {
                continue;
            }
            let a = sys.step(p);
            let b = restored.step(p);
            prop_assert_eq!(a, b, "{}: divergence after restore", name);
        }
        prop_assert_eq!(sys.snapshot(), restored.snapshot(), "{}", name);

        // And the pick sequence replays from scratch to the pre-cut
        // snapshot: snapshots key on exactly the run history's effect.
        if !picks.is_empty() {
            let mut replayed = System::new(&dref);
            let mut script = Script::new(picks.clone());
            for step in 0..picks.len() {
                let ctx = SchedContext { step, target_passages: 1, views: &[] };
                let p = script.pick(&ctx).expect("script covers the range");
                replayed.step(p);
            }
            prop_assert_eq!(replayed.snapshot(), snap, "{}: replay must land on the snapshot", name);
        }
    }
}
