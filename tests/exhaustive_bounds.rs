//! Cross-engine bounds: the exhaustive worst-case search dominates
//! every sampled adversary, its exact values are pinned at small `n`,
//! and its witnesses are executable — finite witnesses replay to
//! exactly the exact cost via `run_priced`, unbounded verdicts pump.
//!
//! The sampled side sweeps the shared small-`n` fixture grid
//! (`shmem::testing::fixtures`): the same scheduler specs and seeds the
//! streaming-equivalence suite uses.

use exclusion::cost::{run_priced, run_priced_dyn};
use exclusion::explore::{
    conformance_registry, price_schedule, worst_case, ExploreConfig, Model, WorstCost,
};
use exclusion::shmem::sched::Script;
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::{DynRef, ProcessId, System};
use exclusion::workload::SchedulerRegistry;

/// Pinned exact worst-case costs at passages = 1 for the register-only
/// suite. `None` means unbounded (the adversary can pump a chargeable
/// busy-wait forever — remote spins under SC, uncached re-reads under
/// CC).
const PINNED: &[(&str, Model, usize, Option<usize>)] = &[
    ("dekker-tree", Model::Sc, 2, Some(15)),
    ("dekker-tree", Model::Sc, 3, Some(43)),
    ("peterson", Model::Sc, 2, None),
    ("peterson", Model::Sc, 3, None),
    ("bakery", Model::Sc, 2, Some(16)),
    ("bakery", Model::Sc, 3, Some(33)),
    ("filter", Model::Sc, 2, None),
    ("filter", Model::Sc, 3, None),
    ("dijkstra", Model::Sc, 2, None),
    ("burns-lynch", Model::Sc, 2, None),
    ("dekker-tree", Model::Cc, 2, Some(15)),
    ("dekker-tree", Model::Cc, 3, Some(44)),
    ("peterson", Model::Cc, 2, Some(10)),
    ("peterson", Model::Cc, 3, Some(30)),
    ("bakery", Model::Cc, 2, Some(18)),
    ("bakery", Model::Cc, 3, Some(38)),
    ("filter", Model::Cc, 2, Some(10)),
    ("filter", Model::Cc, 3, Some(32)),
    ("dijkstra", Model::Cc, 2, None),
    ("burns-lynch", Model::Cc, 2, None),
];

/// The best cost any sampled scheduler of the fixture grid extracts.
fn best_sampled(alg: &exclusion::mutex::DynAlgorithm, n: usize, model: Model) -> usize {
    let scheds = SchedulerRegistry::global();
    let mut best = 0;
    for spec in fixtures::sched_specs(n) {
        let sched = scheds.resolve_str(&spec, n).expect("fixture spec resolves");
        let seeds: &[u64] = if sched.seeded { fixtures::SEEDS } else { &[0] };
        for &seed in seeds {
            let mut live = sched.build(1, seed);
            let priced = run_priced_dyn(alg.as_ref(), live.as_mut(), 1, fixtures::MAX_STEPS)
                .expect("sampled run completes");
            best = best.max(model.total_of(&priced));
        }
    }
    best
}

#[test]
fn exact_worst_case_dominates_every_sampled_adversary() {
    let registry = conformance_registry();
    let cfg = ExploreConfig::default();
    for &n in fixtures::SMALL_NS {
        for name in ["dekker-tree", "peterson", "bakery", "filter"] {
            let alg = registry.resolve_str(name, n).expect("resolves").automaton;
            for model in Model::ALL {
                let report = worst_case(alg.as_ref(), model, &cfg);
                assert!(!report.truncated, "{name} n={n} {model}");
                let sampled = best_sampled(&alg, n, model);
                match &report.cost {
                    WorstCost::Exact { cost, .. } => {
                        assert!(
                            *cost >= sampled,
                            "{name} n={n} {model}: exact {cost} < sampled {sampled}"
                        );
                        assert!(
                            *cost >= report.incumbent,
                            "{name} n={n} {model}: exact below greedy incumbent"
                        );
                    }
                    // An unbounded supremum dominates every sample; the
                    // pump witness is exercised below.
                    WorstCost::Unbounded { .. } => {}
                    WorstCost::Unknown => panic!("{name} n={n} {model}: no verdict"),
                }
            }
        }
    }
}

#[test]
fn exact_witness_schedules_replay_to_the_exact_cost_via_run_priced() {
    let registry = conformance_registry();
    let cfg = ExploreConfig::default();
    for &(name, model, n, expected) in PINNED {
        let alg = registry.resolve_str(name, n).expect("resolves").automaton;
        let report = worst_case(alg.as_ref(), model, &cfg);
        match (expected, &report.cost) {
            (Some(pinned), WorstCost::Exact { cost, schedule }) => {
                assert_eq!(*cost, pinned, "{name} n={n} {model}: exact value drifted");
                // Replaying the witness through the streaming pricer
                // (exactly the engine the sweeps use) reproduces the
                // optimum step for step.
                let dref = DynRef(alg.as_ref());
                let priced = run_priced(
                    &dref,
                    &mut Script::new(schedule.clone()),
                    1,
                    schedule.len() + 1,
                )
                .expect("witness schedule runs");
                assert_eq!(priced.steps, schedule.len(), "{name} n={n} {model}");
                assert_eq!(
                    model.total_of(&priced),
                    pinned,
                    "{name} n={n} {model}: witness does not replay to the optimum"
                );
            }
            (None, WorstCost::Unbounded { prefix, cycle }) => {
                // Pump the cycle: each lap adds the same positive
                // charge, so the supremum is genuinely infinite.
                let price = |laps: usize| {
                    let mut picks = prefix.clone();
                    for _ in 0..laps {
                        picks.extend_from_slice(cycle);
                    }
                    price_schedule(alg.as_ref(), model, &picks)
                };
                let (zero, one, two) = (price(0), price(1), price(2));
                assert!(one > zero, "{name} n={n} {model}: cycle adds no charge");
                // Each lap adds the same charge (subtraction-free so a
                // regression fails the assert instead of underflowing).
                assert_eq!(two + zero, 2 * one, "{name} n={n} {model}");
            }
            (want, got) => panic!("{name} n={n} {model}: pinned {want:?}, got {got:?}"),
        }
    }
}

/// DSM charges every remote access, so *any* algorithm without a fully
/// local spin is pumpable — the registry's register-only suite at n = 2
/// is unbounded across the board, which is exactly why the paper's
/// remote-memory-reference discussion needs local-spin constructions.
#[test]
fn dsm_worst_cases_are_unbounded_for_the_register_only_suite() {
    let registry = conformance_registry();
    let cfg = ExploreConfig::default();
    for name in ["dekker-tree", "peterson", "bakery", "burns-lynch"] {
        let alg = registry.resolve_str(name, 2).expect("resolves").automaton;
        let report = worst_case(alg.as_ref(), Model::Dsm, &cfg);
        assert!(report.cost.is_unbounded(), "{name}: {:?}", report.cost);
    }
}

/// The witness schedule is a complete run: every process finishes its
/// passage, so the schedule drives the system to the same completion
/// any fair scheduler reaches.
#[test]
fn exact_witnesses_complete_every_passage() {
    let registry = conformance_registry();
    let cfg = ExploreConfig::default();
    for (name, n) in [("dekker-tree", 3), ("bakery", 2)] {
        let alg = registry.resolve_str(name, n).expect("resolves").automaton;
        let report = worst_case(alg.as_ref(), Model::Sc, &cfg);
        let WorstCost::Exact { ref schedule, .. } = report.cost else {
            panic!("{name} must be exact under SC");
        };
        let dref = DynRef(alg.as_ref());
        let mut sys = System::new(&dref);
        for &p in schedule {
            sys.step(p);
        }
        for p in ProcessId::all(n) {
            assert_eq!(sys.passages(p), 1, "{name}: {p} did not complete");
        }
    }
}
