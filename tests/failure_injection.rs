//! Integration: the machinery must *reject* broken inputs — bad locks,
//! bad permutations, corrupted encodings — not silently accept them.

use exclusion::lb::{construct, decode, encode, ConstructConfig, ConstructError, Permutation};
use exclusion::mutex::broken::{BrokenPeterson, RacyBool};
use exclusion::mutex::stale_tournament::StaleTournament;
use exclusion::mutex::{Bakery, DekkerTournament};
use exclusion::shmem::checker::{check_mutual_exclusion, CheckConfig};
use exclusion::shmem::testing::{Alternator, NoLock};
use exclusion::shmem::Automaton;

#[test]
fn model_checker_rejects_every_broken_lock() {
    let no_lock = check_mutual_exclusion(&NoLock::new(2), CheckConfig::default());
    assert!(no_lock.violation.is_some());

    let racy = check_mutual_exclusion(&RacyBool::new(2), CheckConfig::default());
    assert!(racy.violation.is_some());

    let peterson = check_mutual_exclusion(
        &BrokenPeterson,
        CheckConfig {
            passages: 2,
            max_states: 5_000_000,
        },
    );
    assert!(peterson.violation.is_some());

    let stale = check_mutual_exclusion(
        &StaleTournament::new(2),
        CheckConfig {
            passages: 3,
            max_states: 10_000_000,
        },
    );
    assert!(stale.violation.is_some());
}

#[test]
fn witnesses_are_genuine_executions() {
    let alg = RacyBool::new(3);
    let out = check_mutual_exclusion(&alg, CheckConfig::default());
    let v = out.violation.expect("found");
    let sys = exclusion::shmem::replay(&alg, v.witness.steps(), |_| {}).expect("replays");
    assert_eq!(sys.in_critical().count(), 2);
}

#[test]
fn construction_diagnoses_non_livelock_free_runs() {
    // The token ring cannot serve permutations that differ from the
    // token order: the construction reports *which* process is stuck on
    // *which* register.
    let alg = Alternator::new(3);
    let err = construct(
        &alg,
        &Permutation::from_order(
            [1usize, 0, 2]
                .map(exclusion::shmem::ProcessId::new)
                .to_vec(),
        ),
        &ConstructConfig::default(),
    )
    .unwrap_err();
    match err {
        ConstructError::Stuck { stage, pid, reg } => {
            assert_eq!(stage, 0);
            assert_eq!(pid.index(), 1);
            assert_eq!(reg.index(), 0);
        }
        other => panic!("expected Stuck, got {other:?}"),
    }
}

#[test]
fn budget_exhaustion_is_reported() {
    let alg = Bakery::new(6);
    let err = construct(
        &alg,
        &Permutation::identity(6),
        &ConstructConfig {
            max_steps_per_stage: 3,
            ..ConstructConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ConstructError::BudgetExceeded { .. }));
}

#[test]
fn construction_rejects_rmw_algorithms() {
    // The paper's model — and its Ω(n log n) bound — is register-only;
    // feeding a queue lock to the construction is diagnosed, not
    // mishandled.
    for alg in exclusion::mutex::AnyAlgorithm::rmw_suite(3) {
        let err = construct(&alg, &Permutation::identity(3), &ConstructConfig::default())
            .expect_err(&alg.name());
        assert!(
            matches!(err, ConstructError::UnsupportedStep { .. }),
            "{}: {err:?}",
            alg.name()
        );
    }
}

#[test]
fn decoding_with_the_wrong_algorithm_fails() {
    let bakery = Bakery::new(5);
    let dekker = DekkerTournament::new(5);
    let pi = Permutation::reversed(5);
    let enc = encode(&construct(&bakery, &pi, &ConstructConfig::default()).unwrap());
    assert!(decode(&dekker, &enc).is_err());
}

#[test]
fn truncated_bitstreams_are_rejected() {
    use exclusion::lb::Encoding;
    let alg = DekkerTournament::new(4);
    let pi = Permutation::identity(4);
    let enc = encode(&construct(&alg, &pi, &ConstructConfig::default()).unwrap());
    let (bytes, bits) = enc.to_bits();
    for cut in [1usize, 2, 7, bits / 2] {
        assert!(
            Encoding::from_bits(&bytes, bits - cut, 4).is_err(),
            "cut {cut} must not parse"
        );
    }
}

#[test]
fn execution_predicates_reject_malformed_traces() {
    use exclusion::shmem::{CritKind, Execution, ProcessId, Step};
    let p0 = ProcessId::new(0);
    // enter before try
    let e = Execution::from_steps(vec![Step::crit(p0, CritKind::Enter)]);
    assert!(!e.well_formed(1));
    // process id out of range
    let e = Execution::from_steps(vec![Step::crit(ProcessId::new(5), CritKind::Try)]);
    assert!(!e.well_formed(2));
}
