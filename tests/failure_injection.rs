//! Integration: the machinery must *reject* broken inputs — broken
//! locks, lying recovery claims, malformed traces, exhausted budgets —
//! not silently accept them, and every rejection must come with a
//! replayable witness or a precise diagnosis.
//!
//! Historically this suite drove the legacy `lb::construct` and
//! `shmem::checker` paths; it now exercises the same guarantees through
//! the registry + explorer stack (which is what the CLI and the
//! benchmarks run), plus the fault-injection layer this repo's crash
//! model lives in.

use exclusion::explore::{certify_recoverable, conformance_registry, explore, ExploreConfig};
use exclusion::mutex::broken::{BrokenPeterson, RacyBool};
use exclusion::mutex::stale_tournament::StaleTournament;
use exclusion::shmem::dynamic::DynRef;
use exclusion::shmem::spec::SpecError;
use exclusion::shmem::testing::NoLock;
use exclusion::shmem::{run_faulted, FaultPlan, System};

fn cfg(passages: usize) -> ExploreConfig {
    ExploreConfig {
        passages,
        ..ExploreConfig::default()
    }
}

#[test]
fn explorer_rejects_every_broken_lock() {
    // Registry path: the planted `broken` entry (a racy boolean lock)
    // is caught by the same conformance registry the CLI certifies.
    let reg = conformance_registry();
    let racy = reg.resolve_str("broken", 2).unwrap().automaton;
    assert!(explore(racy.as_ref(), &cfg(1)).violation.is_some());

    // Direct path: broken locks that are not registry entries are
    // refuted through the same erased interface the registry uses.
    let no_lock = NoLock::new(2);
    assert!(explore(&no_lock, &cfg(1)).violation.is_some());

    let racy = RacyBool::new(2);
    assert!(explore(&racy, &cfg(1)).violation.is_some());

    // BrokenPeterson's race needs a second passage to surface;
    // StaleTournament's needs a third.
    let peterson = BrokenPeterson;
    assert!(explore(&peterson, &cfg(2)).violation.is_some());

    let stale = StaleTournament::new(2);
    assert!(explore(&stale, &cfg(3)).violation.is_some());
}

#[test]
fn violation_witnesses_are_genuine_executions() {
    let alg = RacyBool::new(3);
    let report = explore(&alg, &cfg(1));
    let v = report.violation.expect("found");
    // The witness schedule re-executes from the initial state to a
    // state with two processes in the critical section — it is a real
    // run, not a certificate about an abstract graph.
    let dref = DynRef(&alg);
    let mut sys = System::new(&dref);
    for &p in &v.schedule {
        sys.step(p);
    }
    assert_eq!(sys.in_critical().count(), 2);
    let (a, b) = v.culprits;
    assert_ne!(a, b);
}

#[test]
fn crash_certification_rejects_lying_recovery_claims() {
    // `broken-recover` claims `recoverable` in its registry metadata
    // and is crash-free indistinguishable from the honest `rtas` — the
    // crash-aware explorer is the only machinery that can expose the
    // lie, and it must do so with a replayable fault witness.
    let reg = conformance_registry();
    let alg = reg.resolve_str("broken-recover", 2).unwrap().automaton;

    assert!(
        explore(alg.as_ref(), &cfg(1)).certified_safe(),
        "crash-free, the lie is invisible"
    );
    let report = certify_recoverable(alg.as_ref(), 1, &cfg(1));
    let witness = report.violation.expect("one crash leaks the CS");

    let (mut script, mut plan) = witness.replay_artifacts();
    let replayed = run_faulted(
        &DynRef(alg.as_ref()),
        &mut script,
        &mut plan,
        1,
        witness.trace.len() + 1,
    )
    .expect("witness replays");
    assert_eq!(replayed, witness.trace, "bit-identical replay");
    assert!(!replayed.mutual_exclusion(2));
}

#[test]
fn budget_exhaustion_is_reported_not_truncated() {
    // The fault driver reports an exhausted step budget as an error —
    // it does not hand back a silently truncated execution.
    let reg = conformance_registry();
    let alg = reg.resolve_str("rtas", 3).unwrap().automaton;
    let mut sched = exclusion::shmem::sched::RoundRobin::new();
    let mut plan = FaultPlan::none();
    let err = run_faulted(&DynRef(alg.as_ref()), &mut sched, &mut plan, 1, 3).unwrap_err();
    assert!(err.to_string().contains("exceeded 3 steps"), "{err}");
}

#[test]
fn registries_reject_out_of_range_parameter_values() {
    // Values outside a parameter's range fail as loudly as unknown
    // keys: a negative crash budget does not wrap, zero patience does
    // not silently disable the starvation valve.
    let scheds = exclusion::workload::schedreg::SchedulerRegistry::global();
    let err = scheds.resolve_str("fanlynch:crashes=-1", 4).unwrap_err();
    assert!(
        matches!(&err, SpecError::InvalidParam { key, .. } if key == "crashes"),
        "{err}"
    );
    assert!(err.to_string().contains("non-negative integer"), "{err}");

    let err = scheds.resolve_str("fanlynch:patience=0", 4).unwrap_err();
    assert!(
        matches!(&err, SpecError::InvalidParam { key, .. } if key == "patience"),
        "{err}"
    );
    assert!(err.to_string().contains(">= 1"), "{err}");

    // Typo'd keys still get the nearest-key suggestion alongside.
    let err = scheds.resolve_str("fanlynch:crashs=1", 4).unwrap_err();
    assert!(err.to_string().contains("did you mean `crashes`?"), "{err}");
}

#[test]
fn the_register_only_filter_rejects_rmw_algorithms() {
    // The paper's model — and its Ω(n log n) bound — is register-only;
    // the growth suites derive their algorithm list from the registry's
    // own metadata, so RMW locks cannot leak into the theorem's scope.
    let names =
        exclusion::bound::register_only(exclusion::mutex::registry::AlgorithmRegistry::global());
    assert!(names.contains(&"peterson".to_string()));
    assert!(
        names.contains(&"rpeterson".to_string()),
        "register-only recoverable"
    );
    for rmw in ["rtas", "tas", "ttas", "mcs"] {
        assert!(!names.contains(&rmw.to_string()), "{rmw} is RMW");
    }
}

#[test]
fn execution_predicates_reject_malformed_traces() {
    use exclusion::shmem::{CritKind, Execution, ProcessId, Step};
    let p0 = ProcessId::new(0);
    // enter before try
    let e = Execution::from_steps(vec![Step::crit(p0, CritKind::Enter)]);
    assert!(!e.well_formed(1));
    // process id out of range
    let e = Execution::from_steps(vec![Step::crit(ProcessId::new(5), CritKind::Try)]);
    assert!(!e.well_formed(2));
    // a crash of an out-of-range process is malformed too
    let e = Execution::from_steps(vec![Step::Crash {
        pid: ProcessId::new(9),
    }]);
    assert!(!e.well_formed(2));
}
