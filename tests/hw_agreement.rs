//! Formal-vs-hardware agreement: the same registry name, resolved as a
//! priced formal automaton and as a real-atomics spin lock, served the
//! same arrival schedule, must tell the same story — who got in how
//! often — while each leg reports the cost the other cannot measure
//! (simulated SC/CC/DSM charges vs. wall-clock nanoseconds).
//!
//! These are the deterministic, debug-mode slices of the gates the
//! `bench_hw` binary runs over the full release grid for
//! `BENCH_hw.json`.

use exclusion::workload::hwbench::{passage_counts, run_scenario, HwScenario};
use exclusion_bench::hwbench::{rmr_spread, ARRIVALS, FLATNESS, QUEUE_LOCKS};

fn scenario(alg: &str, arrivals: &str, n: usize) -> HwScenario {
    HwScenario {
        alg: alg.into(),
        arrivals: arrivals.into(),
        n,
        requests_per_process: 3,
        seed: 1,
        ns_per_tick: 100,
    }
}

/// Both legs of every queue-lock scenario agree on the acquisition
/// multiset: per-thread passage counts match, and each leg's order is
/// a permutation of the other's (same length, same counts).
#[test]
fn sim_and_hw_legs_agree_on_acquisition_multisets() {
    for alg in QUEUE_LOCKS {
        for arrivals in ARRIVALS {
            for n in [2usize, 3] {
                let row = run_scenario(&scenario(alg, arrivals, n))
                    .unwrap_or_else(|e| panic!("{alg} under {arrivals} n={n}: {e}"));
                assert!(row.agree, "{alg} under {arrivals} n={n}: legs must agree");
                assert_eq!(
                    row.sim.passages, row.hw.passages,
                    "{alg} under {arrivals} n={n}"
                );
                assert_eq!(
                    passage_counts(&row.sim.order, n),
                    passage_counts(&row.hw.order, n),
                    "{alg} under {arrivals} n={n}: per-thread passage counts"
                );
                assert_eq!(row.sim.order.len(), row.hw.order.len());
            }
        }
    }
}

/// Every row carries both cost vocabularies: the simulated model
/// charges (SC/CC/DSM) and the measured wall-clock fields, with the
/// JSON noting that timing is excluded from byte-identity.
#[test]
fn rows_co_report_simulated_charges_and_measured_time() {
    let row = run_scenario(&scenario("mcs", ARRIVALS[0], 2)).expect("mcs scenario runs");
    assert!(row.sim.cc > 0, "simulated CC charges must be reported");
    assert!(row.sim.sc > 0, "simulated SC charges must be reported");
    assert!(row.hw.elapsed_ns > 0, "hardware leg must be timed");
    let json = row.to_json();
    for field in [
        "\"sc\":",
        "\"cc\":",
        "\"dsm\":",
        "\"elapsed_ns\":",
        "\"mean_wait_ns\":",
    ] {
        assert!(json.contains(field), "row JSON must carry {field}: {json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

/// The O(1)-RMR gate, in miniature: across sizes on the uncontended
/// steady schedule the queue locks' simulated RMR per passage is flat
/// (within [`FLATNESS`]), while the register-only tournament contrast
/// entry grows — the model boundary the benchmark exists to draw.
#[test]
fn queue_locks_are_rmr_flat_where_the_tournament_grows() {
    let sizes = [2usize, 4];
    let mut rows = Vec::new();
    for alg in QUEUE_LOCKS.iter().chain(&["dekker-tree"]) {
        for n in sizes {
            rows.push(
                run_scenario(&scenario(alg, ARRIVALS[0], n))
                    .unwrap_or_else(|e| panic!("{alg} n={n}: {e}")),
            );
        }
    }
    for alg in QUEUE_LOCKS {
        let spread = rmr_spread(&rows, alg);
        assert!(
            spread <= FLATNESS,
            "{alg}: RMR per passage must be flat across sizes, spread {spread}"
        );
    }
    let tournament = rmr_spread(&rows, "dekker-tree");
    assert!(
        tournament > FLATNESS,
        "dekker-tree: per-passage RMR should grow with n, spread {tournament}"
    );
}
