//! The adversary against ground truth, where ground truth exists: at
//! n ∈ {2, 3} the exhaustive engine (`exclusion-explore`, PR 4)
//! computes the *exact* SC supremum, so the adaptive adversary's forced
//! cost can be sandwiched — it must dominate the greedy incumbent the
//! exhaustive search starts from, and (being a real, replayable
//! schedule) it can never exceed the exact optimum. Where the supremum
//! is finite the forced cost is pinned cell by cell; where it is
//! unbounded (remote spins, pumpable forever) the adversary's finite
//! fair-execution cost strictly beats the incumbent instead.
//!
//! Every witness schedule must also replay bit-identically through the
//! streaming pricer: the same `Script` driven twice produces the same
//! `PricedRun`, equal to the costs the game recorded.

use exclusion::bound::{force, register_only, BoundConfig, SC};
use exclusion::cost::run_priced;
use exclusion::explore::{worst_case, ExploreConfig, Model};
use exclusion::mutex::registry::AlgorithmRegistry;
use exclusion::shmem::DynRef;

/// `incumbent ≤ forced ≤ exact` for every register-only algorithm at
/// every exhaustively-searchable size; the upper bound is vacuous for
/// the unbounded (remote-spin) cells, where the forced cost must
/// instead be a finite value the fair game extracted.
#[test]
fn forced_cost_is_sandwiched_by_the_exhaustive_search() {
    let registry = AlgorithmRegistry::global();
    let cfg = BoundConfig::default();
    let xcfg = ExploreConfig::default();
    for name in register_only(AlgorithmRegistry::global()) {
        for n in [2usize, 3] {
            let alg = registry.resolve_str(&name, n).unwrap().automaton;
            let run = force(alg.as_ref(), &cfg);
            assert!(run.completed(), "{name} n={n}");
            let worst = worst_case(alg.as_ref(), Model::Sc, &xcfg);
            assert!(
                run.forced[SC] >= worst.incumbent,
                "{name} n={n}: forced {} below the exhaustive incumbent {}",
                run.forced[SC],
                worst.incumbent
            );
            match worst.cost.exact() {
                Some(exact) => assert!(
                    run.forced[SC] <= exact,
                    "{name} n={n}: forced {} exceeds the exact supremum {exact} — \
                     the adversary plays real schedules and cannot pass the optimum",
                    run.forced[SC]
                ),
                None => assert!(
                    run.steps > 0,
                    "{name} n={n}: unbounded cell must still yield a finite fair run"
                ),
            }
        }
    }
}

/// The cells where the sandwich closes completely: the adversary's
/// forced SC cost *equals* the exhaustive exact optimum. Bakery's
/// worst case is reachable by charged-steps-first play at both sizes;
/// dekker-tree's is at n = 2 (at n = 3 the optimum takes a
/// lookahead — donating a free step to set up two charged ones — that
/// no myopic strategy finds; the honest gap, 33 of 43, is pinned
/// below).
#[test]
fn forced_cost_equals_the_exact_optimum_where_pinned() {
    let registry = AlgorithmRegistry::global();
    let cfg = BoundConfig::default();
    let xcfg = ExploreConfig::default();
    for (name, n) in [("bakery", 2), ("bakery", 3), ("dekker-tree", 2)] {
        let alg = registry.resolve_str(name, n).unwrap().automaton;
        let run = force(alg.as_ref(), &cfg);
        let worst = worst_case(alg.as_ref(), Model::Sc, &xcfg);
        assert_eq!(
            Some(run.forced[SC]),
            worst.cost.exact(),
            "{name} n={n}: the adversary reaches the exhaustive optimum"
        );
    }
    // The pinned gap: dekker-tree n=3 exact is 43, the myopic
    // adversary forces 33. If a future strategy closes this, tighten
    // the pin — do not widen it.
    let alg = registry.resolve_str("dekker-tree", 3).unwrap().automaton;
    let run = force(alg.as_ref(), &cfg);
    let worst = worst_case(alg.as_ref(), Model::Sc, &xcfg);
    assert_eq!(worst.cost.exact(), Some(43));
    assert!(
        (33..=43).contains(&run.forced[SC]),
        "dekker-tree n=3: forced {} left the pinned [33, 43] bracket",
        run.forced[SC]
    );
}

/// The witness `Script` trace replays bit-identically through the
/// streaming pricer: two replays agree with each other and with the
/// costs the game recorded, under every cost model.
#[test]
fn witness_scripts_replay_bit_identically_through_run_priced() {
    let registry = AlgorithmRegistry::global();
    let cfg = BoundConfig::default();
    for name in register_only(AlgorithmRegistry::global()) {
        for n in [2usize, 3] {
            let alg = registry.resolve_str(&name, n).unwrap().automaton;
            let run = force(alg.as_ref(), &cfg);
            let dyn_ref = DynRef(alg.as_ref());
            let once = run_priced(&dyn_ref, &mut run.script(), cfg.passages, run.steps + 1)
                .unwrap_or_else(|e| panic!("{name} n={n}: witness replay failed: {e}"));
            let twice =
                run_priced(&dyn_ref, &mut run.script(), cfg.passages, run.steps + 1).unwrap();
            assert_eq!(once, twice, "{name} n={n}: replay must be deterministic");
            assert_eq!(once.steps, run.steps, "{name} n={n}");
            assert_eq!(once.sc.total(), run.forced[SC], "{name} n={n}");
            // The SC winner's whole cost vector matches the recorded
            // per-strategy costs of whichever strategy won.
            let winner_costs = if run.winner[SC] == "fanlynch" {
                run.adaptive
            } else {
                run.greedy
            };
            assert_eq!(
                [once.sc.total(), once.cc.total(), once.dsm.total()],
                winner_costs,
                "{name} n={n}: witness costs must match the winner's record"
            );
        }
    }
}
