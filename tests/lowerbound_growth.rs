//! The adaptive adversary's forced-cost curves over the growth grid
//! n ∈ {8, 16, 32, 64}: the portfolio dominates the greedy baseline at
//! every grid point for **every** registry algorithm, the register-only
//! (paper-model) curves are superlinear per step, and their SC fits
//! against `c·n·log₂n` are pinned.
//!
//! The superlinearity and fit pins are scoped to the register-only
//! suite deliberately: the paper's Ω(n log n) theorem is a statement
//! about algorithms built from reads and writes. The RMW locks live
//! outside that model (the lower-bound construction rejects them), and
//! several are genuinely O(n) under SC — a test-and-set spin whose
//! failed swap leaves the state unchanged is free, and a ticket lock's
//! single-register spin only changes state when its turn arrives — so
//! their curves are *supposed* to stay linear. The dominance check
//! still covers them: whatever an algorithm's growth class, the
//! adversary must never report less than its own greedy member.

use std::sync::OnceLock;

use exclusion::bound::{
    force_curve, register_only, BoundConfig, BoundCurve, ForcedRun, MODELS, SC,
};
use exclusion::mutex::registry::AlgorithmRegistry;

/// The growth grid the satellite pins.
const GRID: [usize; 4] = [8, 16, 32, 64];

/// One forced curve per deadlock-free registry algorithm, computed
/// once and shared by every test in this binary (the filter column
/// alone is millions of simulated steps; no reason to pay it per
/// assertion). Entries that disclaim deadlock-freedom (the splitter
/// locks) are excluded: a forced-passage game against a lock that can
/// strand every contender need never complete, so the dominance and
/// growth contracts below do not apply to them.
fn curves() -> &'static Vec<BoundCurve> {
    static CURVES: OnceLock<Vec<BoundCurve>> = OnceLock::new();
    CURVES.get_or_init(|| {
        let registry = AlgorithmRegistry::global();
        registry
            .names()
            .iter()
            .filter(|name| registry.get(name).is_some_and(|e| e.info().deadlock_free))
            .map(|name| {
                force_curve(registry, name, &GRID, &BoundConfig::default())
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            })
            .collect()
    })
}

fn curve(algorithm: &str) -> &'static BoundCurve {
    curves()
        .iter()
        .find(|c| c.algorithm == algorithm)
        .unwrap_or_else(|| panic!("{algorithm} missing from the grid"))
}

/// Every registry algorithm, every grid point, every cost model: the
/// adversary's forced cost is at least the greedy adversary's — the
/// portfolio may never lose to its own baseline member.
#[test]
fn adaptive_forced_cost_dominates_greedy_at_every_grid_point() {
    for curve in curves() {
        for cell in &curve.cells {
            assert!(
                cell.completed() && cell.errors.is_empty(),
                "{} n={}: {:?}",
                curve.algorithm,
                cell.n,
                cell.errors
            );
            for (m, model) in MODELS.iter().enumerate() {
                assert!(
                    cell.forced[m] >= cell.greedy[m],
                    "{} n={} {model}: forced {} < greedy {}",
                    curve.algorithm,
                    cell.n,
                    cell.forced[m],
                    cell.greedy[m]
                );
                assert_eq!(
                    cell.forced[m],
                    cell.adaptive[m].max(cell.greedy[m]),
                    "{} n={} {model}: forced must be the portfolio max",
                    curve.algorithm,
                    cell.n
                );
            }
        }
    }
}

/// The adaptive strategy itself (not just the portfolio) must beat
/// greedy strictly somewhere — otherwise it contributes nothing. The
/// remote-spin algorithms are where the knowledge-partition strategy's
/// read-first harvesting wins.
#[test]
fn adaptive_strategy_strictly_beats_greedy_on_remote_spin_algorithms() {
    for name in ["peterson", "filter"] {
        for cell in &curve(name).cells {
            assert!(
                cell.adaptive[SC] > cell.greedy[SC],
                "{name} n={}: adaptive {} vs greedy {}",
                cell.n,
                cell.adaptive[SC],
                cell.greedy[SC]
            );
        }
    }
}

/// Register-only curves grow superlinearly: the per-step-normalized
/// cost `forced_sc(n) / n` strictly increases along the grid (checked
/// as the cross-multiplied integer inequality, no floats).
#[test]
fn register_only_sc_curves_are_superlinear_per_process() {
    for name in register_only(AlgorithmRegistry::global()) {
        let cells: &Vec<ForcedRun> = &curve(&name).cells;
        for pair in cells.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                b.forced[SC] * a.n > a.forced[SC] * b.n,
                "{name}: forced/n not increasing from n={} ({}) to n={} ({})",
                a.n,
                a.forced[SC],
                b.n,
                b.forced[SC]
            );
        }
    }
}

/// The SC fit coefficients over the grid, pinned. `force` is fully
/// deterministic, so these are exact reproductions of the measured
/// curves; the brackets (±20%) leave room for adversary improvements
/// while catching any regression that flattens a curve.
#[test]
fn sc_fit_coefficients_are_pinned() {
    let pinned: [(&str, f64); 7] = [
        ("dekker-tree", 8.49),
        ("peterson", 136.05),
        ("bakery", 29.96),
        ("filter", 8564.7),
        ("dijkstra", 392.1),
        ("burns-lynch", 459.5),
        // Crash-free, rpeterson delegates step-for-step to peterson
        // (the recovery section only runs after a crash, and no crash
        // is ever injected here), so its curve pins to the same value.
        ("rpeterson", 136.05),
    ];
    // The pin table must cover exactly the registry's register-only
    // entries: adding a paper-model lock without pinning its curve is
    // a test failure, not silent coverage drift.
    assert_eq!(
        pinned
            .iter()
            .map(|(n, _)| n.to_string())
            .collect::<Vec<_>>(),
        register_only(AlgorithmRegistry::global()),
    );
    for (name, expected) in pinned {
        let fit = curve(name).fits[SC];
        assert!(
            fit.c > 0.0 && (fit.c - expected).abs() <= 0.2 * expected,
            "{name}: fitted c = {:.2}, pinned {expected:.2}",
            fit.c
        );
        // The tournament curve is essentially exact n·log n (r² ≈ 1);
        // the quadratic-and-worse curves still correlate strongly but
        // leave a visibly larger residual — filter (~n³ over this
        // grid) is the floor.
        assert!(fit.r2 > 0.85, "{name}: r² = {:.3}", fit.r2);
    }
}
