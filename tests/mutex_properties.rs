//! Integration: safety of the *whole standard registry* under
//! randomized schedules (property-based) and exhaustive checking.
//!
//! The suites iterate [`AlgorithmRegistry::standard`] rather than a
//! private algorithm list, with the entry count pinned against
//! `fixtures::STANDARD_ALGORITHMS` — registering a new lock without
//! widening these grids is a test failure, not a silent coverage gap.

use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::checker::{check_mutual_exclusion, CheckConfig};
use exclusion::shmem::sched::{run_random, run_round_robin};
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::DynRef;
use proptest::prelude::*;

/// Canonical names of every standard entry, pinned to the fixture
/// count so index-based proptest strategies cannot silently truncate.
fn standard_names() -> Vec<String> {
    let names: Vec<String> = AlgorithmRegistry::global()
        .entries()
        .map(|e| e.info().name.clone())
        .collect();
    assert_eq!(
        names.len(),
        fixtures::STANDARD_ALGORITHMS,
        "standard registry grew; bump fixtures::STANDARD_ALGORITHMS and the strategies here"
    );
    names
}

/// The entries whose runs must *complete*: everything except the two
/// splitter locks, which honestly declare `deadlock_free: false` (a
/// fair schedule can starve a loser, so a passage target would hang).
/// Their mutual exclusion is still certified exhaustively below.
fn deadlock_free_names() -> Vec<String> {
    let names: Vec<String> = AlgorithmRegistry::global()
        .entries()
        .filter(|e| e.info().deadlock_free)
        .map(|e| e.info().name.clone())
        .collect();
    assert_eq!(names.len(), fixtures::STANDARD_ALGORITHMS - 2);
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any deadlock-free registry entry, any size 1–6, any seed: random
    /// fair schedules preserve mutual exclusion and well-formedness.
    #[test]
    fn random_schedules_preserve_mutual_exclusion(
        n in 1usize..=6,
        alg_idx in 0usize..17,
        seed in any::<u64>(),
        passages in 1usize..=3,
    ) {
        let names = deadlock_free_names();
        prop_assert_eq!(names.len(), 17, "widen alg_idx to match the registry");
        let alg = AlgorithmRegistry::global()
            .resolve_str(&names[alg_idx], n)
            .expect("standard entries resolve")
            .automaton;
        let exec = run_random(&DynRef(alg.as_ref()), passages, fixtures::MAX_STEPS, seed)
            .expect("fair run terminates");
        prop_assert!(exec.well_formed(n));
        prop_assert!(exec.mutual_exclusion(n));
        prop_assert_eq!(exec.critical_order().len(), n * passages);
    }

    /// Round-robin (deterministic fair) schedules likewise.
    #[test]
    fn round_robin_preserves_mutual_exclusion(
        n in 1usize..=6,
        alg_idx in 0usize..17,
        passages in 1usize..=3,
    ) {
        let names = deadlock_free_names();
        prop_assert_eq!(names.len(), 17, "widen alg_idx to match the registry");
        let alg = AlgorithmRegistry::global()
            .resolve_str(&names[alg_idx], n)
            .expect("standard entries resolve")
            .automaton;
        let exec = run_round_robin(&DynRef(alg.as_ref()), passages, fixtures::MAX_STEPS)
            .expect("terminates");
        prop_assert!(exec.mutual_exclusion(n));
    }
}

#[test]
fn exhaustive_model_check_registry_n2() {
    for name in standard_names() {
        let alg = AlgorithmRegistry::global()
            .resolve_str(&name, 2)
            .expect("standard entries resolve")
            .automaton;
        let out = check_mutual_exclusion(
            &DynRef(alg.as_ref()),
            CheckConfig {
                passages: 2,
                max_states: 20_000_000,
            },
        );
        assert!(
            out.verified(),
            "{name}: {} states, violation: {:?}",
            out.states_explored,
            out.violation
        );
    }
}

#[test]
fn exhaustive_model_check_registry_n3_single_passage() {
    for name in standard_names() {
        let alg = AlgorithmRegistry::global()
            .resolve_str(&name, 3)
            .expect("standard entries resolve")
            .automaton;
        let out = check_mutual_exclusion(
            &DynRef(alg.as_ref()),
            CheckConfig {
                passages: 1,
                max_states: 50_000_000,
            },
        );
        assert!(out.verified(), "{name}: {} states", out.states_explored);
    }
}
