//! Integration: safety of the algorithm library under randomized
//! schedules (property-based) and exhaustive checking.

use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::checker::{check_mutual_exclusion, CheckConfig};
use exclusion::shmem::sched::{run_random, run_round_robin};
use exclusion::shmem::Automaton;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any suite algorithm, any size 1–6, any seed: random fair
    /// schedules preserve mutual exclusion and well-formedness.
    #[test]
    fn random_schedules_preserve_mutual_exclusion(
        n in 1usize..=6,
        alg_idx in 0usize..6,
        seed in any::<u64>(),
        passages in 1usize..=3,
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let exec = run_random(&alg, passages, 50_000_000, seed).expect("fair run terminates");
        prop_assert!(exec.well_formed(n));
        prop_assert!(exec.mutual_exclusion(n));
        prop_assert_eq!(exec.critical_order().len(), n * passages);
    }

    /// Round-robin (deterministic fair) schedules likewise.
    #[test]
    fn round_robin_preserves_mutual_exclusion(
        n in 1usize..=6,
        alg_idx in 0usize..6,
        passages in 1usize..=3,
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let exec = run_round_robin(&alg, passages, 50_000_000).expect("terminates");
        prop_assert!(exec.mutual_exclusion(n));
    }
}

#[test]
fn exhaustive_model_check_suite_n2() {
    for alg in AnyAlgorithm::suite(2) {
        let out = check_mutual_exclusion(
            &alg,
            CheckConfig {
                passages: 2,
                max_states: 20_000_000,
            },
        );
        assert!(
            out.verified(),
            "{}: {} states, violation: {:?}",
            alg.name(),
            out.states_explored,
            out.violation
        );
    }
}

#[test]
fn exhaustive_model_check_suite_n3_single_passage() {
    for alg in AnyAlgorithm::suite(3) {
        let out = check_mutual_exclusion(
            &alg,
            CheckConfig {
                passages: 1,
                max_states: 50_000_000,
            },
        );
        assert!(
            out.verified(),
            "{}: {} states",
            alg.name(),
            out.states_explored
        );
    }
}
