//! Integration: the full construct → encode → bits → decode pipeline
//! across crates, at sizes beyond the unit tests.

use exclusion::lb::{
    construct, decode, encode, run_pipeline, verify_counting, ConstructConfig, Encoding,
    Permutation,
};
use exclusion::mutex::{AnyAlgorithm, Bakery, DekkerTournament};
use exclusion::shmem::Automaton;

#[test]
fn pipeline_dekker_n16() {
    let alg = DekkerTournament::new(16);
    for rank in [0u64, 1 << 20, u64::MAX % exclusion::lb::factorial(16)] {
        let pi = Permutation::unrank(16, rank);
        let report = run_pipeline(&alg, &pi, &ConstructConfig::default(), 3)
            .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        // 16 processes, 4 levels: canonical shape 4·16·4 = 256 is the
        // floor; the adversarial construction may cost more.
        assert!(report.cost >= 256, "cost {}", report.cost);
        assert!(report.bits >= report.cost, "γ cells are ≥ 1 bit per unit");
    }
}

#[test]
fn pipeline_bakery_n12() {
    let alg = Bakery::new(12);
    let pi = Permutation::reversed(12);
    let report = run_pipeline(&alg, &pi, &ConstructConfig::default(), 3).unwrap();
    // Bakery's doorway scan is quadratic.
    assert!(report.cost >= 12 * 12, "cost {}", report.cost);
}

#[test]
fn whole_suite_pipeline_n8() {
    for alg in AnyAlgorithm::suite(8) {
        let pi = Permutation::unrank(8, 4321);
        run_pipeline(&alg, &pi, &ConstructConfig::default(), 2)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
    }
}

#[test]
fn counting_exhaustive_n5_dekker() {
    let alg = DekkerTournament::new(5);
    let report = verify_counting(&alg, &ConstructConfig::default()).unwrap();
    assert_eq!(report.permutations, 120);
    assert!(report.all_distinct);
    assert!(report.holds());
    // The information floor: log2(120) ≈ 6.9 bits.
    assert!(report.min_bits as f64 >= report.log2_nfact);
}

#[test]
fn decode_from_bits_only_across_algorithms() {
    // Serialize the encoding, forget everything but the bytes and the
    // algorithm, and reconstruct α_π.
    for alg in AnyAlgorithm::suite(6) {
        let pi = Permutation::unrank(6, 599);
        let c = construct(&alg, &pi, &ConstructConfig::default()).unwrap();
        let (bytes, bits) = encode(&c).to_bits();
        let enc = Encoding::from_bits(&bytes, bits, 6).unwrap();
        let alpha = decode(&alg, &enc).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert!(c.is_linearization(&alpha), "{}", alg.name());
        assert_eq!(alpha.critical_order(), pi.order(), "{}", alg.name());
        assert!(alpha.mutual_exclusion(6), "{}", alg.name());
    }
}

#[test]
fn encodings_injective_across_permutations_and_costs_bounded() {
    use std::collections::HashSet;
    let alg = DekkerTournament::new(4);
    let mut encodings = HashSet::new();
    let mut max_cost = 0;
    for pi in Permutation::all(4) {
        let c = construct(&alg, &pi, &ConstructConfig::default()).unwrap();
        max_cost = max_cost.max(c.cost());
        assert!(encodings.insert(encode(&c).to_bits()), "collision at {pi}");
    }
    assert_eq!(encodings.len(), 24);
    // Theorem 7.5 numerically: max cost ≥ log2(4!)/κ with κ ≤ 8.
    assert!((max_cost * 8) as f64 >= exclusion::lb::log2_factorial(4));
}
