//! Queue-lock FIFO fairness, the defining queue-lock property: under
//! *any* schedule, critical-section entry order equals enqueue order —
//! the system-wide order of the ordering RMWs (fetch-and-store on the
//! tail for MCS/CLH, fetch-and-add on the ticket counter) *is* the
//! service order.
//!
//! The property is checked over the shared fixture scheduler grid ×
//! random seeds × sizes (property-based), and the adaptive lower-bound
//! adversary's `force()` witnesses over the queue locks replay
//! bit-identically through the streaming pricer — the adversary plays
//! real schedules even against locks outside the register-only model
//! it was built to bound.

use exclusion::bound::{force, BoundConfig, SC};
use exclusion::cost::run_priced;
use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::sched::run_scheduler;
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::{DynRef, Execution, ProcessId, RmwOp, Step};
use exclusion::workload::SchedulerRegistry;
use proptest::prelude::*;

const QUEUE_LOCKS: [&str; 3] = ["mcs", "clh", "ticket"];

/// The pids performing the lock's *ordering* RMW, in execution order.
///
/// Layouts are pinned by `crates/mutex/src/queue.rs`: the MCS tail
/// lives at register `2n`, the CLH tail at `n+1`, the ticket draw
/// counter at `0`. MCS's exit-path compare-and-swap targets the same
/// tail word, so the filter keys on the op variant as well as the
/// register: only the fetch-and-store (`Swap`) / fetch-and-add draws
/// define queue positions.
fn enqueue_order(exec: &Execution, alg: &str, n: usize) -> Vec<ProcessId> {
    let (reg, swap): (usize, bool) = match alg {
        "mcs" => (2 * n, true),
        "clh" => (n + 1, true),
        "ticket" => (0, false),
        other => panic!("not a queue lock: {other}"),
    };
    exec.steps()
        .iter()
        .filter_map(|s| match s {
            Step::Rmw { pid, reg: r, op } if r.index() == reg => match op {
                RmwOp::Swap(_) if swap => Some(*pid),
                RmwOp::FetchAdd(_) if !swap => Some(*pid),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

fn fifo_holds(alg_name: &str, n: usize, spec: &str, passages: usize, seed: u64) {
    let alg = AlgorithmRegistry::global()
        .resolve_str(alg_name, n)
        .expect("queue locks resolve")
        .automaton;
    let sched = SchedulerRegistry::global()
        .resolve_str(spec, n)
        .expect("fixture spec resolves");
    let mut live = sched.build(passages, seed);
    let exec = run_scheduler(
        &DynRef(alg.as_ref()),
        live.as_mut(),
        passages,
        fixtures::MAX_STEPS,
    )
    .unwrap_or_else(|e| panic!("{alg_name} n={n} under {spec} seed {seed}: {e}"));
    let entries = exec.critical_order();
    assert_eq!(entries.len(), n * passages, "{alg_name} n={n} under {spec}");
    assert_eq!(
        enqueue_order(&exec, alg_name, n),
        entries,
        "{alg_name} n={n} under {spec} seed {seed}: entry order must equal enqueue order"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any queue lock, any fixture scheduler, any seed: FIFO holds.
    #[test]
    fn entry_order_equals_enqueue_order(
        alg_idx in 0usize..3,
        sched_idx in 0usize..7,
        n in 2usize..=4,
        passages in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let specs = fixtures::sched_specs(n);
        prop_assert_eq!(specs.len(), 7, "fixture grid grew; widen sched_idx");
        fifo_holds(QUEUE_LOCKS[alg_idx], n, &specs[sched_idx], passages, seed);
    }
}

/// The full fixture grid, deterministically, at the fixture seeds —
/// so a FIFO break is caught even if the sampled property run misses
/// the triggering cell.
#[test]
fn fifo_holds_on_the_full_fixture_grid() {
    for alg in QUEUE_LOCKS {
        for &n in fixtures::SMALL_NS {
            for spec in fixtures::sched_specs(n) {
                for &seed in fixtures::SEEDS {
                    fifo_holds(alg, n, &spec, fixtures::PASSAGES, seed);
                }
            }
        }
    }
}

/// The adaptive adversary's witnesses over the queue locks are
/// executable: `force()`'s recorded `Script` replays through
/// `run_priced` to exactly the recorded step count and forced SC cost,
/// bit-identically across replays.
#[test]
fn force_witnesses_over_queue_locks_replay_bit_identically() {
    let registry = AlgorithmRegistry::global();
    let cfg = BoundConfig::default();
    for name in QUEUE_LOCKS {
        for n in [2usize, 3] {
            let alg = registry.resolve_str(name, n).unwrap().automaton;
            let run = force(alg.as_ref(), &cfg);
            assert!(run.completed(), "{name} n={n}: forced run must complete");
            let dyn_ref = DynRef(alg.as_ref());
            let once = run_priced(&dyn_ref, &mut run.script(), cfg.passages, run.steps + 1)
                .unwrap_or_else(|e| panic!("{name} n={n}: witness replay failed: {e}"));
            let twice =
                run_priced(&dyn_ref, &mut run.script(), cfg.passages, run.steps + 1).unwrap();
            assert_eq!(once, twice, "{name} n={n}: replay must be deterministic");
            assert_eq!(once.steps, run.steps, "{name} n={n}");
            assert_eq!(once.sc.total(), run.forced[SC], "{name} n={n}");
        }
    }
}
