//! Queue-lock conformance: the composable `mcs`/`clh`/`ticket` entries
//! are explore-certified (mutual exclusion + deadlock freedom) at the
//! fixture sizes, and their exact worst-case remote costs are pinned.
//!
//! The cost pins encode the model boundary the locks were built to
//! demonstrate, per passage-1 worst case at n∈{2,3}:
//!
//! * under **CC** (crash-free, this *is* the RMR-CC cost) all three
//!   have finite exact worst cases — the spins are cache-local, so the
//!   adversary cannot pump a waiting process;
//! * under **DSM** only `mcs` stays finite: its queue node (`locked[i]`
//!   *and* `next[i]`) is homed at its owner, so every spin is local.
//!   `clh` spins on the *predecessor's* node and `ticket` on the shared
//!   counter — remote under DSM, so the adversary pumps the wait
//!   forever, exactly the literature's local-spin classification;
//! * the monolithic `mcs-sim` twin homes only its `locked` bank (the
//!   exit-path link-wait spins remotely), so it is DSM-unbounded — the
//!   composable port is pinned here as a strict improvement.
//!
//! Contrast with the register-only suite pinned in
//! `safety_conformance.rs` / `exhaustive_bounds.rs`, where busy-waits
//! are chargeable and most entries pump under SC.

use exclusion::cost::run_priced;
use exclusion::explore::{analyze, price_schedule, ExploreConfig, Model, WorstCost};
use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::sched::Script;
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::DynRef;

const QUEUE_LOCKS: [&str; 3] = ["mcs", "clh", "ticket"];

/// Exact worst-case CC (≡ crash-free RMR) cost, passages = 1.
const PINNED_CC: &[(&str, usize, usize)] = &[
    // (algorithm, worst at n=2, worst at n=3)
    ("mcs", 12, 20),
    ("clh", 9, 14),
    ("ticket", 7, 12),
];

/// Exact worst-case DSM cost for the one genuinely local-spin lock.
const PINNED_DSM_MCS: &[(usize, usize)] = &[(2, 6), (3, 10)];

/// Exact reachable-state counts at passages = 1 — a drift detector for
/// the micro-program encodings, like the register-only pins in
/// `safety_conformance.rs`.
const PINNED_STATES: &[(&str, usize, usize)] =
    &[("mcs", 134, 2100), ("clh", 77, 693), ("ticket", 30, 80)];

fn resolve(name: &str, n: usize) -> exclusion::mutex::DynAlgorithm {
    AlgorithmRegistry::global()
        .resolve_str(name, n)
        .expect("queue locks resolve from the standard registry")
        .automaton
}

#[test]
fn queue_locks_are_certified_with_pinned_exact_cc_worst_cases() {
    let cfg = ExploreConfig::default();
    for &(name, at2, at3) in PINNED_CC {
        for (n, pinned) in [(2, at2), (3, at3)] {
            let alg = resolve(name, n);
            let (report, worst) = analyze(alg.as_ref(), Model::Cc, &cfg);
            assert!(!report.truncated, "{name} at n={n} must explore fully");
            assert!(
                report.certified_safe(),
                "{name} at n={n} must be certified mutually exclusive"
            );
            assert!(
                report.certified_deadlock_free(),
                "{name} at n={n} must be certified deadlock-free"
            );
            let worst = worst.expect("worst-case search ran");
            let WorstCost::Exact { cost, schedule } = &worst.cost else {
                panic!("{name} at n={n}: CC worst case must be finite, got {worst:?}");
            };
            assert_eq!(*cost, pinned, "{name} at n={n}: exact CC worst drifted");
            // The witness is executable: it replays through the
            // streaming pricer to exactly the pinned optimum.
            let dref = DynRef(alg.as_ref());
            let priced = run_priced(
                &dref,
                &mut Script::new(schedule.clone()),
                1,
                schedule.len() + 1,
            )
            .expect("witness schedule runs");
            assert_eq!(priced.cc.total(), pinned, "{name} at n={n}: witness replay");
        }
    }
}

#[test]
fn mcs_is_dsm_finite_and_clh_ticket_are_dsm_pumpable() {
    let cfg = ExploreConfig::default();
    for &(n, pinned) in PINNED_DSM_MCS {
        let alg = resolve("mcs", n);
        let (_, worst) = analyze(alg.as_ref(), Model::Dsm, &cfg);
        let worst = worst.expect("worst-case search ran");
        assert_eq!(
            worst.cost.exact(),
            Some(pinned),
            "mcs at n={n}: DSM worst must stay finite (local-spin)"
        );
    }
    for name in ["clh", "ticket"] {
        for n in [2, 3] {
            let alg = resolve(name, n);
            let (_, worst) = analyze(alg.as_ref(), Model::Dsm, &cfg);
            let worst = worst.expect("worst-case search ran");
            let WorstCost::Unbounded { prefix, cycle } = &worst.cost else {
                panic!(
                    "{name} at n={n}: DSM worst must be unbounded, got {:?}",
                    worst.cost
                );
            };
            // Pump the witness: every lap of the cycle adds the same
            // positive DSM charge — the remote spin, made executable.
            let price = |laps: usize| {
                let mut picks = prefix.clone();
                for _ in 0..laps {
                    picks.extend_from_slice(cycle);
                }
                price_schedule(alg.as_ref(), Model::Dsm, &picks)
            };
            let (zero, one, two) = (price(0), price(1), price(2));
            assert!(one > zero, "{name} at n={n}: cycle adds no DSM charge");
            assert_eq!(
                two - one,
                one - zero,
                "{name} at n={n}: pump laps must charge linearly"
            );
        }
    }
}

/// The composable port's one deliberate divergence from its monolithic
/// twin: `mcs-sim` homes only the `locked` bank, leaving the exit-path
/// link-wait remote — DSM-pumpable — while `mcs` homes the whole
/// per-process node and stays finite.
#[test]
fn composable_mcs_improves_on_the_sim_twin_under_dsm() {
    let cfg = ExploreConfig::default();
    let sim = resolve("mcs-sim", 2);
    let (_, worst) = analyze(sim.as_ref(), Model::Dsm, &cfg);
    assert!(
        worst.expect("worst-case search ran").cost.is_unbounded(),
        "mcs-sim: the remote link-wait must be DSM-pumpable"
    );
    let ported = resolve("mcs", 2);
    let (_, worst) = analyze(ported.as_ref(), Model::Dsm, &cfg);
    assert_eq!(worst.expect("worst-case search ran").cost.exact(), Some(6));
}

#[test]
fn queue_lock_state_spaces_are_pinned() {
    let cfg = ExploreConfig::default();
    for &(name, at2, at3) in PINNED_STATES {
        for (n, expected) in [(2, at2), (3, at3)] {
            let alg = resolve(name, n);
            let (report, _) = analyze(alg.as_ref(), Model::Cc, &cfg);
            assert_eq!(
                report.states, expected,
                "{name} at n={n}: reachable-state count drifted"
            );
        }
    }
}

/// The registry metadata the engines trust: all three are RMW locks,
/// none is recoverable, and only the ticket lock (whose tokens are
/// pid-free draw numbers) declares permutation symmetry.
#[test]
fn queue_lock_registry_metadata_is_pinned() {
    let reg = AlgorithmRegistry::global();
    for name in QUEUE_LOCKS {
        let info = reg.get(name).expect("registered").info().clone();
        assert!(info.uses_rmw, "{name}");
        assert!(info.deadlock_free, "{name}");
        assert!(!info.recoverable, "{name}");
        assert_eq!(info.symmetric, name == "ticket", "{name}");
    }
    let _ = fixtures::SMALL_NS; // the grid the pins above cover
}
