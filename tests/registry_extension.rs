//! Integration: the acceptance bar for the open registries — a brand
//! new algorithm and a brand new scheduler, defined here in a test
//! crate, are registered and swept **using only public registry APIs**:
//! no enum variant, no parser arm, no CLI match was edited anywhere.

use std::sync::Arc;

use exclusion::cost::run_priced_dyn;
use exclusion::mutex::registry::{AlgorithmEntry, AlgorithmInfo, AlgorithmRegistry};
use exclusion::shmem::spec::ParamInfo;
use exclusion::shmem::{
    Automaton, CritKind, NextStep, Observation, ProcessId, RegisterId, SchedContext, Scheduler,
    Spec, Value,
};
use exclusion::workload::{
    sweep, Scenario, SchedSpec, SchedulerEntry, SchedulerInfo, SchedulerRegistry, SweepOptions,
};

/// A downstream lock the built-in suite knows nothing about: a token
/// ring over a single `turn` register, with a configurable number of
/// courtesy re-reads (`linger`) before entering — enough structure to
/// exercise a spec parameter.
#[derive(Clone, Copy, Debug)]
struct TokenRing {
    n: usize,
    linger: u8,
}

impl Automaton for TokenRing {
    /// `(phase, lingers remaining)`.
    type State = (u8, u8);

    fn processes(&self) -> usize {
        self.n
    }
    fn registers(&self) -> usize {
        1
    }
    fn initial_state(&self, _pid: ProcessId) -> (u8, u8) {
        (0, self.linger)
    }
    fn next_step(&self, pid: ProcessId, state: &(u8, u8)) -> NextStep {
        match state.0 {
            0 => NextStep::Crit(CritKind::Try),
            1 => NextStep::Read(RegisterId::new(0)),
            2 => NextStep::Crit(CritKind::Enter),
            3 => NextStep::Crit(CritKind::Exit),
            4 => NextStep::Write(RegisterId::new(0), ((pid.index() + 1) % self.n) as Value),
            _ => NextStep::Crit(CritKind::Rem),
        }
    }
    fn observe(&self, pid: ProcessId, state: &(u8, u8), obs: Observation) -> (u8, u8) {
        match (state.0, obs) {
            (0, Observation::Crit) => (1, state.1),
            (1, Observation::Read(v)) if v == pid.index() as Value => {
                if state.1 > 0 {
                    // Courtesy re-read: holds the token but looks again.
                    (1, state.1 - 1)
                } else {
                    (2, 0)
                }
            }
            (1, _) => *state,
            (2, Observation::Crit) => (3, 0),
            (3, Observation::Crit) => (4, 0),
            (4, Observation::Write) => (5, 0),
            (5, Observation::Crit) => (0, self.linger),
            _ => *state,
        }
    }
    fn name(&self) -> String {
        "token-ring".into()
    }
}

/// A downstream scheduling policy: round robin in *descending* process
/// order — fair, deterministic, and not a built-in.
#[derive(Clone, Debug, Default)]
struct ReverseRobin {
    next: usize,
}

impl Scheduler for ReverseRobin {
    fn name(&self) -> String {
        "reverse-robin".into()
    }
    fn pick(&mut self, ctx: &SchedContext<'_>) -> Option<ProcessId> {
        let n = ctx.views.len();
        for _ in 0..n {
            let v = &ctx.views[n - 1 - (self.next % n)];
            self.next = (self.next + 1) % n;
            if !v.done {
                return Some(v.pid);
            }
        }
        None
    }
}

fn extended_registries() -> (AlgorithmRegistry, SchedulerRegistry) {
    let mut algs = AlgorithmRegistry::standard();
    algs.register(AlgorithmEntry::new(
        AlgorithmInfo {
            name: "token-ring".into(),
            aliases: vec![],
            summary: "single-register token ring with courtesy lingering".into(),
            min_n: 1,
            uses_rmw: false,
            recoverable: false,
            symmetric: false,
            deadlock_free: true,
            cost_class: "Θ(n)/handoff".into(),
            params: vec![ParamInfo {
                key: "linger",
                help: "courtesy re-reads before entering (default 0)",
            }],
        },
        |spec, n| {
            spec.expect_params(&["linger"], false)?;
            let linger = spec.usize_param("linger", 0)?;
            Ok(Arc::new(TokenRing {
                n,
                linger: u8::try_from(linger).map_err(|_| {
                    exclusion::shmem::SpecError::InvalidParam {
                        spec: spec.label(),
                        key: "linger".into(),
                        value: linger.to_string(),
                        expected: "at most 255".into(),
                    }
                })?,
            }))
        },
    ));
    let mut scheds = SchedulerRegistry::standard();
    scheds.register(SchedulerEntry::new(
        SchedulerInfo {
            name: "reverse-robin".into(),
            aliases: vec!["rrr".into()],
            summary: "round robin in descending pid order".into(),
            seeded: false,
            params: vec![],
        },
        |spec, _n| {
            spec.expect_params(&[], false)?;
            Ok((
                Spec::new("reverse-robin"),
                Arc::new(|_passages, _seed| Box::new(ReverseRobin::default()) as _),
            ))
        },
    ));
    (algs, scheds)
}

/// The headline: a scenario over the custom algorithm under the custom
/// scheduler builds, sweeps, and reports — through exactly the same
/// engine the built-ins use.
#[test]
fn custom_algorithm_and_scheduler_sweep_through_the_standard_engine() {
    let (algs, scheds) = extended_registries();
    let scenarios = vec![
        Scenario::builder("token-ring", 4)
            .passages(2)
            .sched(SchedSpec::parse("reverse-robin").unwrap())
            .build_with(&algs, &scheds)
            .unwrap(),
        Scenario::builder("token-ring:linger=3", 4)
            .passages(2)
            .sched(SchedSpec::parse("rrr").unwrap())
            .build_with(&algs, &scheds)
            .unwrap(),
        Scenario::builder("token-ring", 4)
            .passages(2)
            .sched(SchedSpec::random())
            .seeds(1..=4)
            .build_with(&algs, &scheds)
            .unwrap(),
    ];
    assert_eq!(scenarios[0].name, "token-ring/reverse-robin/n4x2");
    assert_eq!(scenarios[1].algorithm, "token-ring:linger=3");
    assert_eq!(scenarios[1].scheduler, "reverse-robin", "aliases normalize");

    let report = sweep(&scenarios, &SweepOptions::default());
    assert_eq!(report.records.len(), 1 + 1 + 4);
    for r in &report.records {
        assert!(r.error.is_none(), "{}: {:?}", r.scenario, r.error);
        assert!(r.sc > 0 && r.steps > 0);
    }
    // Lingering performs extra charged re-reads, so it strictly
    // outprices the plain ring under the same schedule.
    assert!(
        report.summaries[1].sc.max > report.summaries[0].sc.max,
        "linger=3 must cost more: {:?} vs {:?}",
        report.summaries[1].sc,
        report.summaries[0].sc
    );
    // And the JSON report carries the custom labels.
    let json = report.to_json();
    assert!(json.contains("token-ring:linger=3"));
    assert!(json.contains("reverse-robin"));
}

/// Custom entries also work through the direct streaming API, and
/// validation catches their parameter errors like any built-in's.
#[test]
fn custom_entries_validate_and_stream_like_builtins() {
    let (algs, scheds) = extended_registries();
    let handle = algs.resolve_str("token-ring:linger=2", 3).unwrap();
    let sched = scheds.resolve_str("reverse-robin", 3).unwrap();
    let priced = run_priced_dyn(
        handle.automaton.as_ref(),
        sched.build(1, 0).as_mut(),
        1,
        100_000,
    )
    .unwrap();
    assert!(priced.sc.total() > 0);

    let err = algs.resolve_str("token-ring:linger=999", 3).unwrap_err();
    assert!(err.to_string().contains("at most 255"), "{err}");
    let err = algs.resolve_str("token-ring:spin=1", 3).unwrap_err();
    assert!(err.to_string().contains("linger"), "{err}");
    // The custom name participates in suggestions too.
    let err = algs.resolve_str("token-rang", 3).unwrap_err();
    assert!(
        err.to_string().contains("did you mean `token-ring`"),
        "{err}"
    );
}
