//! Safety conformance: the exhaustive explorer's verdict for **every**
//! entry of the algorithm registry is pinned at the shared small-`n`
//! fixture grid. All real algorithms — register-only and RMW — must be
//! *certified* mutually exclusive, and certified deadlock-free unless
//! their registry metadata disclaims it (the splitter locks, whose
//! contention hazard must then be *found*); the planted `broken` lock
//! must be caught with a minimal counterexample that replays through
//! the ordinary replay machinery.

use exclusion::explore::{conformance_registry, explore, ExploreConfig};
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::{replay, DynRef};

/// Pinned state-space sizes for the register-only suite at the fixture
/// grid (passages = 1). These are exact reachable-state counts; a
/// change means the algorithm encodings (or the snapshot semantics)
/// changed.
const PINNED_STATES: &[(&str, usize, usize)] = &[
    // (algorithm, states at n=2, states at n=3)
    ("dekker-tree", 116, 3469),
    ("peterson", 95, 2285),
    ("bakery", 216, 7507),
    ("filter", 95, 2692),
    ("dijkstra", 164, 4159),
    ("burns-lynch", 87, 1145),
];

#[test]
fn every_registry_entry_is_certified_or_caught_at_small_n() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        for name in registry.names() {
            let entry = registry.get(&name).expect("listed name resolves");
            if entry.info().min_n > n {
                continue;
            }
            let alg = registry
                .resolve_str(&name, n)
                .expect("registry entry resolves")
                .automaton;
            let report = explore(alg.as_ref(), &ExploreConfig::default());
            assert!(!report.truncated, "{name} at n={n} must explore fully");
            if name == "broken" {
                assert!(
                    report.violation.is_some(),
                    "the planted race must be caught at n={n}"
                );
            } else {
                assert!(
                    report.certified_safe(),
                    "{name} at n={n} must be certified mutually exclusive"
                );
                if entry.info().deadlock_free {
                    assert!(
                        report.certified_deadlock_free(),
                        "{name} at n={n} must be certified deadlock-free"
                    );
                } else if n > 1 {
                    // Entries that disclaim deadlock-freedom (the
                    // splitter locks: every contender can lose) must
                    // have their hazard *found* — a certified negative,
                    // not a silent pass.
                    assert!(
                        report.hazard.is_some(),
                        "{name} at n={n} disclaims deadlock-freedom; \
                         the explorer must find the hazard"
                    );
                }
            }
        }
    }
}

#[test]
fn register_only_state_spaces_are_pinned() {
    let registry = conformance_registry();
    for &(name, at2, at3) in PINNED_STATES {
        for (n, expected) in [(2, at2), (3, at3)] {
            let alg = registry
                .resolve_str(name, n)
                .expect("pinned name resolves")
                .automaton;
            let report = explore(alg.as_ref(), &ExploreConfig::default());
            assert_eq!(
                report.states, expected,
                "{name} at n={n}: reachable-state count drifted"
            );
            assert!(report.edges > report.states, "{name} at n={n}");
        }
    }
}

#[test]
fn broken_counterexample_is_minimal_and_replays() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        let alg = registry
            .resolve_str("broken", n)
            .expect("broken resolves")
            .automaton;
        let report = explore(alg.as_ref(), &ExploreConfig::default());
        let cex = report.violation.expect("broken must be caught");
        // The race needs exactly: both processes try, both read the
        // clear bit, both claim it, both enter — 8 steps regardless of
        // how many bystanders exist.
        assert_eq!(cex.schedule.len(), 8, "minimal witness at n={n}");
        assert_eq!(cex.trace.len(), cex.schedule.len());
        assert_ne!(cex.culprits.0, cex.culprits.1);
        assert!(!cex.trace.mutual_exclusion(n));
        // The trace replays against the erased algorithm through the
        // standard replay machinery and indeed ends with two processes
        // in the critical section.
        let dref = DynRef(alg.as_ref());
        let sys = replay(&dref, cex.trace.steps(), |_| {}).expect("witness replays");
        assert_eq!(sys.in_critical().count(), 2, "n={n}");
    }
}

/// The certified verdict is a *proof* only because exploration is
/// exhaustive: capping the state budget must withdraw certification,
/// not claim it vacuously.
#[test]
fn truncated_runs_never_certify() {
    let registry = conformance_registry();
    let alg = registry
        .resolve_str("dekker-tree", 3)
        .expect("resolves")
        .automaton;
    let report = explore(
        alg.as_ref(),
        &ExploreConfig {
            max_states: 100,
            ..ExploreConfig::default()
        },
    );
    assert!(report.truncated);
    assert!(!report.certified_safe());
    assert!(!report.certified_deadlock_free());
}
