//! Determinism and bounded memory of the open-stream serve engine:
//! reports are a pure function of `(job, options)` — bit-identical
//! across worker counts and repeated runs — and the live structures
//! (in-flight lanes, pending ring) never exceed their configured
//! capacities no matter how long the stream is.

use exclusion::serve::{serve, ServeJob, ServeOptions};
use proptest::prelude::*;

/// Registry algorithms cheap enough for a property grid.
const ALGORITHMS: [&str; 4] = ["peterson", "dekker-tree", "tas-sim", "ticket-sim"];

/// One spec per arrival-model family, parameters picked to exercise
/// idle gaps, saturation, and everything between.
const ARRIVALS: [&str; 4] = [
    "steady:gap=3",
    "poisson:rate=0.3",
    "bursty:size=3,gap=7",
    "diurnal:period=128,peak=1",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same job served on 1, 2 and 4 workers — and served twice —
    /// yields `==` reports and byte-identical JSON. The stripe is kept
    /// small so every run spans many stripes and the merge order
    /// actually matters.
    #[test]
    fn reports_are_bit_identical_across_workers_and_reruns(
        alg_idx in 0..ALGORITHMS.len(),
        arr_idx in 0..ARRIVALS.len(),
        n in 2usize..5,
        deadline_raw in 0u64..100,
        seed in any::<u64>(),
    ) {
        // Half the cases wait forever; the rest get patience 0..50.
        let deadline = (deadline_raw < 50).then_some(deadline_raw);
        let job = ServeJob::new(ALGORITHMS[alg_idx], n, 3_000)
            .unwrap()
            .arrivals(ARRIVALS[arr_idx])
            .unwrap();
        let opts = |workers| ServeOptions {
            workers,
            stripe: 256,
            deadline,
            seed,
            ..ServeOptions::default()
        };
        let one = serve(&job, &opts(1));
        let two = serve(&job, &opts(2));
        let four = serve(&job, &opts(4));
        let again = serve(&job, &opts(4));
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&four, &again);
        prop_assert_eq!(one.to_json(), four.to_json());
        // Conservation: every offered request ends somewhere.
        prop_assert_eq!(one.completed + one.abandoned + one.unserved, 3_000);
        prop_assert!(one.errors.is_empty());
    }
}

/// A million requests fit in bounded memory: at most `n` requests are
/// ever in flight and the pending ring never exceeds its capacity —
/// the stream is materialized one arrival at a time, so nothing scales
/// with the request count.
#[test]
fn a_million_requests_stay_within_the_ring_and_lanes() {
    let job = ServeJob::new("tas-sim", 2, 1_000_000)
        .unwrap()
        .arrivals("steady:gap=8")
        .unwrap();
    let opts = ServeOptions {
        ring: 4,
        stripe: 65_536,
        ..ServeOptions::default()
    };
    let report = serve(&job, &opts);
    assert_eq!(report.completed + report.abandoned, 1_000_000);
    assert!(report.errors.is_empty());
    assert!(
        report.peak_in_flight <= 2,
        "peak in-flight {} exceeds the {} lanes",
        report.peak_in_flight,
        2
    );
    assert!(
        report.peak_queue <= 4,
        "peak queue {} exceeds the ring capacity 4",
        report.peak_queue
    );
    // The solo stream is cache-friendly: the fast path must carry
    // almost all of it.
    assert!(report.cache_hits > report.cache_misses);
}
