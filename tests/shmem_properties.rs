//! Integration: property-based checks of the shared-memory substrate
//! itself — replay determinism, execution predicates, scheduler
//! equivalences.

use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::sched::{run_random, run_sequential, run_with};
use exclusion::shmem::{replay, replay_collect, Automaton, CritKind, ProcessId, Step};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay is deterministic and idempotent: replaying a recorded
    /// execution reproduces exactly the same outcomes, twice.
    #[test]
    fn replay_is_deterministic(
        n in 1usize..=5,
        alg_idx in 0usize..11,
        seed in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::full_suite(n).remove(alg_idx);
        let exec = run_random(&alg, 1, 50_000_000, seed).expect("terminates");
        let a = replay_collect(&alg, exec.steps()).expect("replays");
        let b = replay_collect(&alg, exec.steps()).expect("replays");
        prop_assert_eq!(a, b);
    }

    /// The recorded read values equal the value of the last write (or
    /// RMW) to that register, or the initial value — the register
    /// semantics of §3.1.
    #[test]
    fn reads_return_last_written_value(
        n in 1usize..=4,
        alg_idx in 0usize..11,
        seed in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::full_suite(n).remove(alg_idx);
        let exec = run_random(&alg, 1, 50_000_000, seed).expect("terminates");
        let outcomes = replay_collect(&alg, exec.steps()).expect("replays");
        let mut shadow: Vec<u64> = (0..alg.registers())
            .map(|r| alg.initial_value(exclusion::shmem::RegisterId::new(r)))
            .collect();
        for o in outcomes {
            match o.step {
                Step::Read { reg, .. } => {
                    prop_assert_eq!(o.read_value, Some(shadow[reg.index()]));
                }
                Step::Write { reg, value, .. } => shadow[reg.index()] = value,
                Step::Rmw { reg, op, .. } => {
                    let old = shadow[reg.index()];
                    prop_assert_eq!(o.read_value, Some(old));
                    shadow[reg.index()] = op.apply(old);
                }
                // Crashes leave registers untouched (and cannot appear in
                // an unfaulted run anyway).
                Step::Crit { .. } | Step::Crash { .. } => {}
            }
        }
    }

    /// Prefixes of well-formed executions are well formed; projections
    /// contain only the projected process's steps, in order.
    #[test]
    fn prefix_and_projection_laws(
        n in 1usize..=4,
        alg_idx in 0usize..6,
        seed in any::<u64>(),
        cut in 0usize..200,
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let exec = run_random(&alg, 1, 50_000_000, seed).expect("terminates");
        let prefix = exec.prefix(cut.min(exec.len()));
        prop_assert!(prefix.well_formed(n));
        prop_assert!(prefix.mutual_exclusion(n));
        for p in ProcessId::all(n) {
            let proj: Vec<_> = exec.projection(p).collect();
            prop_assert!(proj.iter().all(|s| s.pid() == p));
            // Projection of the prefix is a prefix of the projection.
            let proj_prefix: Vec<_> = prefix.projection(p).collect();
            prop_assert!(proj.starts_with(&proj_prefix));
        }
    }

    /// `run_with` driven by a recorded schedule reproduces the same
    /// execution (scheduling is the only nondeterminism in the model).
    #[test]
    fn schedule_determines_execution(
        n in 1usize..=4,
        alg_idx in 0usize..6,
        seed in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let exec = run_random(&alg, 1, 50_000_000, seed).expect("terminates");
        let schedule: Vec<ProcessId> = exec.iter().map(Step::pid).collect();
        let mut i = 0;
        let replayed = run_with(&alg, schedule.len() + 1, |_| {
            let next = schedule.get(i).copied();
            i += 1;
            next
        })
        .expect("within budget");
        prop_assert_eq!(exec, replayed);
    }
}

#[test]
fn sequential_runs_compose() {
    // Running [p0], then continuing with [p1] from scratch, equals the
    // canonical sequential run of [p0, p1] — stages do not interfere.
    for alg in AnyAlgorithm::suite(3) {
        let order: Vec<_> = ProcessId::all(3).collect();
        let full = run_sequential(&alg, &order, 100_000).unwrap();
        // Count rem steps: exactly one per process, in order.
        let rems: Vec<_> = full
            .iter()
            .filter(|s| s.crit_kind() == Some(CritKind::Rem))
            .map(Step::pid)
            .collect();
        assert_eq!(rems, order, "{}", alg.name());
        // And the run replays.
        replay(&alg, full.steps(), |_| {}).unwrap();
    }
}
