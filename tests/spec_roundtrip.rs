//! Integration: the spec grammar round-trips through every registry —
//! for each algorithm and scheduler entry, with and without
//! parameters, `parse(label(x)) == Ok(x)`; resolved report labels
//! re-resolve to themselves; and unknown names or malformed parameters
//! produce actionable errors listing the registry contents.

use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::{Spec, SpecError};
use exclusion::workload::{SchedSpec, SchedulerRegistry};
use proptest::prelude::*;

/// Every registry entry name, bare, satisfies `parse(label(x)) == Ok(x)`
/// and resolves to a label that re-resolves to itself.
#[test]
fn bare_entry_names_roundtrip_through_both_registries() {
    let n = 4;
    let algs = AlgorithmRegistry::global();
    for name in algs.names() {
        let spec = Spec::parse(&name).expect("entry names are valid specs");
        assert_eq!(spec.label(), name);
        assert_eq!(Spec::parse(&spec.label()).unwrap(), spec);
        let label = algs.resolve(&spec, n).expect("resolves").label;
        assert_eq!(algs.resolve_str(&label, n).unwrap().label, label, "{name}");
    }
    let scheds = SchedulerRegistry::global();
    for name in scheds.names() {
        let spec = Spec::parse(&name).expect("entry names are valid specs");
        assert_eq!(Spec::parse(&spec.label()).unwrap(), spec);
        let label = scheds.resolve(&spec, n).expect("resolves").label;
        assert_eq!(
            scheds.resolve_str(&label, n).unwrap().label,
            label,
            "{name}: resolved labels are fixed points"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parameterized algorithm specs round-trip: every `(key, value)`
    /// combination the standard entries accept parses back to the same
    /// spec, and resolution accepts it wherever the value is valid.
    #[test]
    fn parameterized_algorithm_specs_roundtrip(
        n in 2usize..=6,
        levels in 1usize..=12,
        backoff in 0usize..=12,
    ) {
        let algs = AlgorithmRegistry::global();
        for spec in [
            Spec::new("filter").with("levels", levels),
            Spec::new("ttas-sim").with("backoff", backoff),
        ] {
            prop_assert_eq!(Spec::parse(&spec.label()).unwrap(), spec.clone());
            match algs.resolve(&spec, n) {
                Ok(resolved) => {
                    prop_assert_eq!(&resolved.label, &spec.label());
                    // Re-resolving the emitted label is identity.
                    let again = algs.resolve_str(&resolved.label, n).unwrap();
                    prop_assert_eq!(again.label, resolved.label);
                }
                Err(e) => {
                    // The only rejection in this grid: too few filter
                    // levels for n — and the error says exactly that.
                    prop_assert!(spec.name == "filter" && levels + 1 < n, "{}", e);
                    prop_assert!(e.to_string().contains("levels"), "{}", e);
                }
            }
        }
    }

    /// Parameterized scheduler specs round-trip — including the legacy
    /// positional spellings, which normalize to canonical labels that
    /// are fixed points of resolution.
    #[test]
    fn parameterized_scheduler_specs_roundtrip(
        n in 2usize..=8,
        wave in 1usize..=8,
        gap in 0usize..=64,
        stride in 0usize..=64,
        patience in 1usize..=64,
    ) {
        let scheds = SchedulerRegistry::global();
        for spec in [
            SchedSpec::burst(wave, gap),
            SchedSpec::stagger(stride),
            SchedSpec::from_spec(Spec::new("greedy-adversary").with("patience", patience)),
        ] {
            prop_assert_eq!(SchedSpec::parse(&spec.label()).unwrap(), spec.clone());
            let resolved = scheds.resolve(spec.spec(), n).unwrap();
            prop_assert_eq!(&resolved.label, &spec.label());
            let again = scheds.resolve_str(&resolved.label, n).unwrap();
            prop_assert_eq!(again.label, resolved.label);
        }
        // Legacy spellings normalize to the named-parameter labels.
        let legacy = scheds.resolve_str(&format!("burst:{wave}x{gap}"), n).unwrap();
        prop_assert_eq!(legacy.label, SchedSpec::burst(wave, gap).label());
        let legacy = scheds.resolve_str(&format!("stagger:{stride}"), n).unwrap();
        prop_assert_eq!(legacy.label, SchedSpec::stagger(stride).label());
    }

    /// Unknown names fail with the full registry contents (so the error
    /// is actionable) and, for near-misses, a suggestion.
    #[test]
    fn unknown_names_list_registry_contents(seed in any::<u64>()) {
        let bogus = format!("no-such-entry-{seed}");
        let err = AlgorithmRegistry::global().resolve_str(&bogus, 4).unwrap_err();
        let SpecError::UnknownName { known, kind, .. } = &err else {
            panic!("expected UnknownName, got {err}");
        };
        prop_assert_eq!(*kind, "algorithm");
        prop_assert_eq!(known.clone(), AlgorithmRegistry::global().names());
        for name in known {
            prop_assert!(err.to_string().contains(name.as_str()), "{}", err);
        }

        let err = SchedulerRegistry::global().resolve_str(&bogus, 4).unwrap_err();
        let SpecError::UnknownName { known, kind, .. } = &err else {
            panic!("expected UnknownName, got {err}");
        };
        prop_assert_eq!(*kind, "scheduler");
        prop_assert_eq!(known.clone(), SchedulerRegistry::global().names());
    }
}

/// Malformed or misdirected parameters are rejected with errors naming
/// the accepted keys — never silently ignored.
#[test]
fn malformed_params_produce_actionable_errors() {
    let algs = AlgorithmRegistry::global();
    let scheds = SchedulerRegistry::global();

    let err = algs.resolve_str("filter:levels=lots", 4).unwrap_err();
    assert!(matches!(err, SpecError::InvalidParam { .. }), "{err}");
    assert!(err.to_string().contains("levels=lots"), "{err}");

    let err = algs.resolve_str("filter:depth=3", 4).unwrap_err();
    assert!(
        err.to_string().contains("levels"),
        "names valid keys: {err}"
    );

    let err = algs.resolve_str("bakery:levels=3", 4).unwrap_err();
    assert!(
        err.to_string().contains("no parameters"),
        "param-less entries say so: {err}"
    );

    let err = scheds.resolve_str("burst:wave=2,depth=4", 4).unwrap_err();
    assert!(err.to_string().contains("wave, gap"), "{err}");

    let err = scheds.resolve_str("burst:wave=0,gap=4", 4).unwrap_err();
    assert!(err.to_string().contains("positive"), "{err}");

    for malformed in ["", "x:", "x:=2", "x:k="] {
        assert!(Spec::parse(malformed).is_err(), "{malformed:?}");
    }
}
