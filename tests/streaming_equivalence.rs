//! Integration: the streaming cost engine is bit-identical to the
//! replay-based pricers — totals, per-process and per-register
//! breakdowns — for every algorithm of the registry under every
//! scheduling policy and several seeds, **through the erased-state dyn
//! path**: the recorded leg drives the monomorphized `AnyAlgorithm`
//! enum, the streaming leg drives the registry's `Arc<dyn DynAutomaton>`
//! handle, so one assertion pins streaming == replay *and* dyn ==
//! typed at once. The incrementally maintained scheduler views must
//! also equal a from-scratch rebuild after every step of an
//! adversarial run driven through the dyn path.

use exclusion::cost::{all_costs, run_priced, run_priced_dyn, CostTracker};
use exclusion::mutex::{AlgorithmRegistry, AnyAlgorithm};
use exclusion::shmem::sched::run_scheduler;
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::{Automaton, DynRef, ProcessId, RegisterId, System, ViewTable};
use exclusion::workload::{SchedSpec, SchedulerRegistry};

const MAX_STEPS: usize = fixtures::MAX_STEPS;

/// The shared small-`n` scheduler grid (`shmem::testing::fixtures`),
/// parsed into specs — the same grid the safety-conformance and
/// exhaustive-bounds suites sweep.
fn all_specs(n: usize) -> Vec<SchedSpec> {
    fixtures::sched_specs(n)
        .iter()
        .map(|s| SchedSpec::parse(s).expect("fixture specs parse"))
        .collect()
}

/// The acceptance bar for the streaming engine and the erased-state
/// redesign: over the full registry × scheduler grid (RMW locks
/// included) at several seeds, `run_priced_dyn` on the erased registry
/// handle reproduces the typed, recorded run's replay-based SC/CC/DSM
/// reports bit for bit — not just the totals but the per-process and
/// per-register breakdowns.
#[test]
fn dyn_streaming_costs_match_typed_replay_costs_on_the_full_grid() {
    let n = 4;
    let algs = AlgorithmRegistry::global();
    for name in algs.names() {
        // A sampled run can strand forever inside a lock that
        // disclaims deadlock-freedom (the splitter locks have
        // genuinely doomed states), so the run-to-completion grid
        // skips those entries; the explorer certifies them instead.
        if algs.get(&name).is_none_or(|e| !e.info().deadlock_free) {
            continue;
        }
        let erased = algs
            .resolve_str(&name, n)
            .expect("registry entry")
            .automaton;
        // Registry-native entries (the recoverable locks) have no
        // typed-enum twin; their recorded leg drives an independently
        // resolved erased handle instead, which still pins streaming
        // == replay across two separately constructed automata.
        match AnyAlgorithm::by_name(&name, n) {
            Some(typed) => grid_leg(&name, &typed, erased, n),
            None => {
                let twin = algs
                    .resolve_str(&name, n)
                    .expect("registry entry")
                    .automaton;
                grid_leg(&name, &DynRef(twin.as_ref()), erased, n);
            }
        }
    }
}

fn grid_leg<A: Automaton>(
    name: &str,
    typed: &A,
    erased: std::sync::Arc<dyn exclusion::shmem::DynAutomaton + Send + Sync>,
    n: usize,
) {
    let passages = fixtures::PASSAGES;
    let scheds = SchedulerRegistry::global();
    {
        for spec in all_specs(n) {
            let sched = scheds.resolve(spec.spec(), n).expect("known policy");
            let seeds: &[u64] = if sched.seeded { fixtures::SEEDS } else { &[0] };
            for &seed in seeds {
                let label = format!("{name} under {} seed {seed}", sched.label);

                let mut recording = sched.build(passages, seed);
                let exec = run_scheduler(typed, recording.as_mut(), passages, MAX_STEPS)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let (sc, cc, dsm) = all_costs(typed, &exec).expect("replay");

                let mut streaming = sched.build(passages, seed);
                let priced =
                    run_priced_dyn(erased.as_ref(), streaming.as_mut(), passages, MAX_STEPS)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));

                assert_eq!(priced.steps, exec.len(), "{label}");
                assert_eq!(priced.sc, sc, "{label}");
                assert_eq!(priced.cc, cc, "{label}");
                assert_eq!(priced.dsm, dsm, "{label}");
                // Spell the breakdowns out, so a future widening of
                // `CostReport` equality cannot silently weaken this.
                for p in ProcessId::all(n) {
                    assert_eq!(priced.sc.process(p), sc.process(p), "{label} {p}");
                    assert_eq!(priced.cc.process(p), cc.process(p), "{label} {p}");
                    assert_eq!(priced.dsm.process(p), dsm.process(p), "{label} {p}");
                }
                for r in RegisterId::all(typed.registers()) {
                    assert_eq!(priced.sc.register(r), sc.register(r), "{label} {r:?}");
                    assert_eq!(priced.cc.register(r), cc.register(r), "{label} {r:?}");
                    assert_eq!(priced.dsm.register(r), dsm.register(r), "{label} {r:?}");
                }
            }
        }
    }
}

/// Parameterized registry specs run through the dyn path too: the
/// erased `filter:levels=…` and `ttas-sim:backoff=…` variants price
/// identically to their directly constructed typed counterparts.
#[test]
fn parameterized_specs_stream_identically_to_their_typed_constructions() {
    let n = 4;
    let passages = 2;
    let algs = AlgorithmRegistry::global();
    let scheds = SchedulerRegistry::global();
    let typed_fat_filter = exclusion::mutex::Filter::with_levels(n, 6);
    let typed_backoff = exclusion::mutex::TtasSim::with_backoff(n, 3);

    for (spec, typed) in [
        (
            "filter:levels=6",
            &typed_fat_filter as &dyn exclusion::shmem::DynAutomaton,
        ),
        ("ttas-sim:backoff=3", &typed_backoff),
    ] {
        let erased = algs
            .resolve_str(spec, n)
            .expect("parameterized spec")
            .automaton;
        for sched_spec in ["greedy", "random"] {
            let sched = scheds.resolve_str(sched_spec, n).expect("policy");
            let mut a = sched.build(passages, 9);
            let mut b = sched.build(passages, 9);
            let direct = run_priced(&DynRef(typed), a.as_mut(), passages, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let resolved = run_priced_dyn(erased.as_ref(), b.as_mut(), passages, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(direct, resolved, "{spec} under {sched_spec}");
            assert!(direct.sc.total() > 0, "{spec}");
        }
    }
}

/// A tracker fed step by step agrees with the one-shot driver.
#[test]
fn manual_tracker_feed_matches_run_priced() {
    let alg = AnyAlgorithm::by_name("dekker-tree", 4).expect("known");
    let passages = 1;
    let sched_entry = SchedulerRegistry::global()
        .resolve_str("greedy", 4)
        .expect("known policy");
    let mut sched = sched_entry.build(passages, 0);
    let mut sys = System::new(&alg);
    let mut tracker = CostTracker::new(&alg);
    let mut table = ViewTable::new(&sys, passages, sched.wants_step_previews());
    for step in 0..MAX_STEPS {
        let ctx = exclusion::shmem::SchedContext {
            step,
            target_passages: passages,
            views: table.views(),
        };
        let Some(p) = sched.pick(&ctx) else { break };
        let done = sys.step(p);
        table.apply(&sys, passages, &done);
        tracker.observe(&done);
    }
    let mut again = sched_entry.build(passages, 0);
    let priced = run_priced(&alg, again.as_mut(), passages, MAX_STEPS).expect("run");
    assert_eq!(priced.steps, tracker.steps());
    let (sc, cc, dsm) = tracker.into_reports();
    assert_eq!((priced.sc, priced.cc, priced.dsm), (sc, cc, dsm));
}

/// The incremental-view regression: during a greedy-adversary run of a
/// real tournament lock **driven through the erased dyn path**, the
/// driver's `ViewTable` equals a from-scratch rebuild after every
/// single step.
#[test]
fn incremental_views_equal_fresh_views_during_adversarial_dyn_runs() {
    for alg_name in ["dekker-tree", "burns-lynch", "mcs-sim"] {
        let n = 5;
        let passages = 2;
        let handle = AlgorithmRegistry::global()
            .resolve_str(alg_name, n)
            .expect("known")
            .automaton;
        let alg = DynRef(handle.as_ref());
        let sched_entry = SchedulerRegistry::global()
            .resolve_str("greedy", n)
            .expect("known policy");
        let mut sched = sched_entry.build(passages, 0);
        let previews = sched.wants_step_previews();
        let mut sys = System::new(&alg);
        let mut table = ViewTable::new(&sys, passages, previews);
        let mut finished = false;
        for step in 0..100_000 {
            assert_eq!(
                table.views(),
                ViewTable::new(&sys, passages, previews).views(),
                "{alg_name} step {step}"
            );
            let ctx = exclusion::shmem::SchedContext {
                step,
                target_passages: passages,
                views: table.views(),
            };
            let Some(p) = sched.pick(&ctx) else {
                finished = true;
                break;
            };
            let done = sys.step(p);
            table.apply(&sys, passages, &done);
        }
        assert!(finished, "{alg_name}: run did not terminate");
    }
}
