//! Integration: the streaming cost engine is bit-identical to the
//! replay-based pricers — totals, per-process and per-register
//! breakdowns — for every algorithm of the suite under every scheduling
//! policy and several seeds, and the incrementally maintained scheduler
//! views equal a from-scratch rebuild after every step of an
//! adversarial run.

use exclusion::cost::{all_costs, run_priced, CostTracker};
use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::sched::run_scheduler;
use exclusion::shmem::{Automaton, ProcessId, RegisterId, System, ViewTable};
use exclusion::workload::SchedSpec;

const MAX_STEPS: usize = 50_000_000;

fn all_specs(n: usize) -> Vec<SchedSpec> {
    vec![
        SchedSpec::Sequential,
        SchedSpec::RoundRobin,
        SchedSpec::Random,
        SchedSpec::Greedy,
        SchedSpec::Burst {
            wave: n.div_ceil(2),
            gap: 2 * n,
        },
        SchedSpec::Stagger { stride: 2 * n },
    ]
}

/// The acceptance bar for the streaming engine: over the full
/// `AnyAlgorithm` × `SchedSpec` grid (RMW locks included) at several
/// seeds, `run_priced` reproduces the recorded run's replay-based
/// SC/CC/DSM reports bit for bit — not just the totals but the
/// per-process and per-register breakdowns.
#[test]
fn streaming_costs_match_replay_costs_on_the_full_grid() {
    let n = 4;
    let passages = 2;
    for alg in AnyAlgorithm::full_suite(n) {
        for spec in all_specs(n) {
            let seeds: &[u64] = if spec.is_seeded() { &[1, 7, 42] } else { &[0] };
            for &seed in seeds {
                let label = format!("{} under {} seed {seed}", alg.name(), spec.label());

                let mut recording = spec.build(n, passages, seed);
                let exec = run_scheduler(&alg, recording.as_mut(), passages, MAX_STEPS)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let (sc, cc, dsm) = all_costs(&alg, &exec).expect("replay");

                let mut streaming = spec.build(n, passages, seed);
                let priced = run_priced(&alg, streaming.as_mut(), passages, MAX_STEPS)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));

                assert_eq!(priced.steps, exec.len(), "{label}");
                assert_eq!(priced.sc, sc, "{label}");
                assert_eq!(priced.cc, cc, "{label}");
                assert_eq!(priced.dsm, dsm, "{label}");
                // Spell the breakdowns out, so a future widening of
                // `CostReport` equality cannot silently weaken this.
                for p in ProcessId::all(n) {
                    assert_eq!(priced.sc.process(p), sc.process(p), "{label} {p}");
                    assert_eq!(priced.cc.process(p), cc.process(p), "{label} {p}");
                    assert_eq!(priced.dsm.process(p), dsm.process(p), "{label} {p}");
                }
                for r in RegisterId::all(alg.registers()) {
                    assert_eq!(priced.sc.register(r), sc.register(r), "{label} {r:?}");
                    assert_eq!(priced.cc.register(r), cc.register(r), "{label} {r:?}");
                    assert_eq!(priced.dsm.register(r), dsm.register(r), "{label} {r:?}");
                }
            }
        }
    }
}

/// A tracker fed step by step agrees with the one-shot driver.
#[test]
fn manual_tracker_feed_matches_run_priced() {
    let alg = AnyAlgorithm::by_name("dekker-tree", 4).expect("known");
    let passages = 1;
    let mut sched = SchedSpec::Greedy.build(4, passages, 0);
    let mut sys = System::new(&alg);
    let mut tracker = CostTracker::new(&alg);
    let mut table = ViewTable::new(&sys, passages, sched.wants_step_previews());
    for step in 0..MAX_STEPS {
        let ctx = exclusion::shmem::SchedContext {
            step,
            target_passages: passages,
            views: table.views(),
        };
        let Some(p) = sched.pick(&ctx) else { break };
        let done = sys.step(p);
        table.apply(&sys, passages, &done);
        tracker.observe(&done);
    }
    let mut again = SchedSpec::Greedy.build(4, passages, 0);
    let priced = run_priced(&alg, again.as_mut(), passages, MAX_STEPS).expect("run");
    assert_eq!(priced.steps, tracker.steps());
    let (sc, cc, dsm) = tracker.into_reports();
    assert_eq!((priced.sc, priced.cc, priced.dsm), (sc, cc, dsm));
}

/// The incremental-view regression: during a greedy-adversary run of a
/// real tournament lock, the driver's `ViewTable` equals a from-scratch
/// rebuild after every single step.
#[test]
fn incremental_views_equal_fresh_views_during_adversarial_runs() {
    for alg_name in ["dekker-tree", "burns-lynch", "mcs-sim"] {
        let n = 5;
        let passages = 2;
        let alg = AnyAlgorithm::by_name(alg_name, n).expect("known");
        let mut sched = SchedSpec::Greedy.build(n, passages, 0);
        let previews = sched.wants_step_previews();
        let mut sys = System::new(&alg);
        let mut table = ViewTable::new(&sys, passages, previews);
        let mut finished = false;
        for step in 0..100_000 {
            assert_eq!(
                table.views(),
                ViewTable::new(&sys, passages, previews).views(),
                "{alg_name} step {step}"
            );
            let ctx = exclusion::shmem::SchedContext {
                step,
                target_passages: passages,
                views: table.views(),
            };
            let Some(p) = sched.pick(&ctx) else {
                finished = true;
                break;
            };
            let done = sys.step(p);
            table.apply(&sys, passages, &done);
        }
        assert!(finished, "{alg_name}: run did not terminate");
    }
}
