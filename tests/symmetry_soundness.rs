//! Soundness of the explorer's orbit (symmetry) reduction, ample-set
//! partial-order reduction, fingerprint compression and frontier
//! spilling: every knob must change *how much* the explorer visits,
//! never *what it concludes*.
//!
//! The contract under test, per knob:
//!
//! * **symmetry** — quotienting by the process-permutation orbit is a
//!   strong bisimulation, so every verdict (safety, hazard kind, BFS
//!   depth, minimal-witness length, exact worst-case cost) must agree
//!   with the unreduced run, and witnesses must replay verbatim after
//!   de-canonicalization;
//! * **partial-order reduction** — preserves safety and
//!   completion-reachability but *not* minimal witness depth or hazard
//!   kind, so only existence verdicts are compared;
//! * **compression / spilling** — pure representation changes: every
//!   report field must be bit-identical to the plain run (modulo the
//!   `fingerprinted` flag).

use exclusion::explore::{
    analyze, conformance_registry, explore, price_schedule, ExploreConfig, ExploreError, Model,
    WorstCost,
};
use exclusion::shmem::sched::{Random, Scheduler, Script};
use exclusion::shmem::testing::fixtures;
use exclusion::shmem::{
    canonicalize_snapshot, permute_snapshot, replay, DynRef, Perm, ProcessId, SchedContext, System,
    ViewTable,
};
use proptest::prelude::*;

/// The registry entries declaring full process-permutation symmetry —
/// the ones orbit reduction actually shrinks.
const SYMMETRIC: [&str; 5] = [
    "splitter",
    "splitter-gate",
    "tas-sim",
    "ttas-sim",
    "ticket-sim",
];

fn cfg_with(f: impl FnOnce(&mut ExploreConfig)) -> ExploreConfig {
    let mut cfg = ExploreConfig::default();
    f(&mut cfg);
    cfg
}

/// Orbit reduction is a verdict-preserving quotient: for **every**
/// registry entry (symmetric or not) the reduced and unreduced
/// explorations agree on safety, hazard kind, BFS depth and
/// minimal-witness length — and the planted race's witness still
/// replays to two processes in the critical section.
#[test]
fn reduced_and_unreduced_verdicts_agree_for_every_entry() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        for name in registry.names() {
            let entry = registry.get(&name).expect("listed name resolves");
            if entry.info().min_n > n {
                continue;
            }
            let alg = registry.resolve_str(&name, n).expect("resolves").automaton;
            let reduced = explore(alg.as_ref(), &ExploreConfig::default());
            let plain = explore(alg.as_ref(), &cfg_with(|c| c.symmetry = false));
            assert!(!reduced.truncated && !plain.truncated, "{name} n={n}");
            assert_eq!(
                reduced.certified_safe(),
                plain.certified_safe(),
                "{name} n={n}: safety verdict must not depend on reduction"
            );
            assert_eq!(
                reduced.violation.is_some(),
                plain.violation.is_some(),
                "{name} n={n}"
            );
            if let (Some(rv), Some(pv)) = (&reduced.violation, &plain.violation) {
                // BFS layer depths survive the quotient, so minimality
                // does too.
                assert_eq!(
                    rv.schedule.len(),
                    pv.schedule.len(),
                    "{name} n={n}: minimal witness length must survive reduction"
                );
                let dref = DynRef(alg.as_ref());
                let sys = replay(&dref, rv.trace.steps(), |_| {}).expect("witness replays");
                assert_eq!(sys.in_critical().count(), 2, "{name} n={n}");
            }
            assert_eq!(
                reduced.hazard.as_ref().map(|h| h.kind),
                plain.hazard.as_ref().map(|h| h.kind),
                "{name} n={n}: hazard kind must survive reduction"
            );
            assert_eq!(reduced.depth, plain.depth, "{name} n={n}");
            // The quotient never *grows* the space, and for entries
            // with no declared symmetry it is exactly the identity.
            assert!(reduced.states <= plain.states, "{name} n={n}");
            if !entry.info().symmetric {
                assert_eq!(reduced.states, plain.states, "{name} n={n}");
                assert_eq!(reduced.edges, plain.edges, "{name} n={n}");
            }
        }
    }
}

/// For genuinely symmetric entries the quotient must actually shrink
/// the state space — at n = 3 every orbit of a contended configuration
/// has up to 3! members, so the reduction is strict and substantial.
#[test]
fn reduction_strictly_shrinks_symmetric_state_spaces() {
    let registry = conformance_registry();
    for name in SYMMETRIC {
        let alg = registry.resolve_str(name, 3).expect("resolves").automaton;
        let reduced = explore(alg.as_ref(), &ExploreConfig::default());
        let plain = explore(alg.as_ref(), &cfg_with(|c| c.symmetry = false));
        assert!(
            2 * reduced.states <= plain.states,
            "{name}: expected ≥2x shrink at n=3, got {} vs {}",
            reduced.states,
            plain.states
        );
    }
}

/// Hazard schedules of the reduced exploration replay verbatim: the
/// de-canonicalized pids drive a fresh system into the doomed region —
/// for a deadlock, all the way to a fully stuck state.
#[test]
fn hazard_schedules_replay_under_reduction() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        for name in ["splitter", "splitter-gate"] {
            let alg = registry.resolve_str(name, n).expect("resolves").automaton;
            let dref = DynRef(alg.as_ref());
            let report = explore(alg.as_ref(), &ExploreConfig::default());
            let hazard = report
                .hazard
                .as_ref()
                .unwrap_or_else(|| panic!("{name} n={n} must have a contention hazard"));
            let mut sys = System::new(&dref);
            for &p in &hazard.schedule {
                sys.step(p);
            }
            // The doomed region never completes the passage target.
            assert!(
                ProcessId::all(n).any(|p| sys.passages(p) < report.passages),
                "{name} n={n}: hazard schedule must not lead to completion"
            );
            if hazard.kind == exclusion::explore::HazardKind::Deadlock {
                // A deadlock witness ends fully stuck: every remaining
                // process's step leaves the system unchanged.
                let before = sys.snapshot();
                for p in ProcessId::all(n) {
                    if sys.passages(p) >= report.passages {
                        continue;
                    }
                    sys.step(p);
                    assert_eq!(
                        sys.snapshot(),
                        before,
                        "{name} n={n}: deadlock witness must be stuck"
                    );
                }
            }
        }
    }
}

/// The worst-case search sees the same optimum through the quotient:
/// exact costs agree with the unreduced search, finite witnesses price
/// to exactly the optimum after de-canonicalization, and unbounded
/// pump cycles add the same positive charge per unrolled lap.
#[test]
fn worst_case_costs_survive_reduction() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        for name in SYMMETRIC {
            let alg = registry.resolve_str(name, n).expect("resolves").automaton;
            let (_, reduced) = analyze(alg.as_ref(), Model::Sc, &ExploreConfig::default());
            let (_, plain) = analyze(alg.as_ref(), Model::Sc, &cfg_with(|c| c.symmetry = false));
            let reduced = reduced.expect("safe entries get a worst-case report");
            let plain = plain.expect("safe entries get a worst-case report");
            match (&reduced.cost, &plain.cost) {
                (WorstCost::Exact { cost: rc, schedule }, WorstCost::Exact { cost: pc, .. }) => {
                    assert_eq!(rc, pc, "{name} n={n}: exact optimum must survive reduction");
                    assert_eq!(
                        price_schedule(alg.as_ref(), Model::Sc, schedule),
                        *rc,
                        "{name} n={n}: reduced witness must price to the optimum"
                    );
                }
                (WorstCost::Unbounded { prefix, cycle }, WorstCost::Unbounded { .. }) => {
                    let lap = |k: usize| {
                        let mut picks = prefix.clone();
                        for _ in 0..k {
                            picks.extend_from_slice(cycle);
                        }
                        price_schedule(alg.as_ref(), Model::Sc, &picks)
                    };
                    let (zero, one, two) = (lap(0), lap(1), lap(2));
                    assert!(one > zero, "{name} n={n}: cycle must charge");
                    assert_eq!(
                        two + zero,
                        2 * one,
                        "{name} n={n}: cycle must pump linearly"
                    );
                }
                (r, p) => panic!("{name} n={n}: verdict shape diverged: {r:?} vs {p:?}"),
            }
        }
    }
}

/// Partial-order reduction preserves existence verdicts (safety,
/// hazard-or-not) — though not witness minimality or hazard kind — and
/// its violation witnesses still replay.
#[test]
fn partial_order_reduction_preserves_existence_verdicts() {
    let registry = conformance_registry();
    for &n in fixtures::SMALL_NS {
        for name in registry.names() {
            let entry = registry.get(&name).expect("listed name resolves");
            if entry.info().min_n > n {
                continue;
            }
            let alg = registry.resolve_str(&name, n).expect("resolves").automaton;
            let plain = explore(alg.as_ref(), &ExploreConfig::default());
            let por = explore(alg.as_ref(), &cfg_with(|c| c.por = true));
            assert!(!por.truncated, "{name} n={n}");
            assert!(por.states <= plain.states, "{name} n={n}");
            assert_eq!(
                por.violation.is_some(),
                plain.violation.is_some(),
                "{name} n={n}: POR must preserve the safety verdict"
            );
            assert_eq!(
                por.hazard.is_some(),
                plain.hazard.is_some(),
                "{name} n={n}: POR must preserve hazard existence"
            );
            if let Some(v) = &por.violation {
                let dref = DynRef(alg.as_ref());
                let sys = replay(&dref, v.trace.steps(), |_| {}).expect("witness replays");
                assert_eq!(sys.in_critical().count(), 2, "{name} n={n}");
            }
        }
    }
}

/// Fingerprint compression and frontier spilling are representation
/// changes only: every field of the report except `fingerprinted` is
/// bit-identical to the plain run.
#[test]
fn compression_and_spilling_change_no_verdict() {
    let registry = conformance_registry();
    for name in ["splitter", "peterson", "tas-sim", "broken", "bakery"] {
        let alg = registry.resolve_str(name, 3).expect("resolves").automaton;
        let plain = explore(alg.as_ref(), &ExploreConfig::default());
        for knob in [
            cfg_with(|c| c.compress = true),
            cfg_with(|c| c.spill = true),
            cfg_with(|c| {
                c.compress = true;
                c.spill = true;
            }),
        ] {
            let alt = explore(alg.as_ref(), &knob);
            assert_eq!(alt.states, plain.states, "{name} under {knob:?}");
            assert_eq!(alt.edges, plain.edges, "{name} under {knob:?}");
            assert_eq!(alt.depth, plain.depth, "{name} under {knob:?}");
            assert_eq!(alt.violation, plain.violation, "{name} under {knob:?}");
            assert_eq!(alt.hazard, plain.hazard, "{name} under {knob:?}");
            assert_eq!(alt.fingerprinted, knob.compress, "{name}");
        }
    }
}

/// Reduced explorations stay worker-count independent: the layer
/// barrier plus canonical representatives make states, depth and
/// verdicts a pure function of the algorithm and bounds.
#[test]
fn reduced_verdicts_are_worker_count_independent() {
    let registry = conformance_registry();
    for name in ["splitter", "splitter-gate"] {
        let alg = registry.resolve_str(name, 3).expect("resolves").automaton;
        let base = explore(alg.as_ref(), &cfg_with(|c| c.workers = 1));
        for workers in [2, 4] {
            let alt = explore(alg.as_ref(), &cfg_with(|c| c.workers = workers));
            assert_eq!(alt.states, base.states, "{name} workers={workers}");
            assert_eq!(alt.edges, base.edges, "{name} workers={workers}");
            assert_eq!(alt.depth, base.depth, "{name} workers={workers}");
            assert_eq!(
                alt.hazard.as_ref().map(|h| (h.kind, h.doomed_states)),
                base.hazard.as_ref().map(|h| (h.kind, h.doomed_states)),
                "{name} workers={workers}"
            );
        }
    }
}

/// The node-id budget is a structured error, not an assert: an
/// oversized `max_states` is rejected up front with the actual limit
/// spelled out.
#[test]
fn oversized_state_caps_are_structured_errors() {
    let cfg = cfg_with(|c| c.max_states = usize::MAX);
    let err = cfg.validated().expect_err("must reject");
    assert!(matches!(err, ExploreError::TooManyStates { .. }));
    let msg = err.to_string();
    assert!(
        msg.contains("exceeds the 32-bit node-id limit") && msg.contains("--max-states"),
        "diagnostic must spell out the limit: {msg}"
    );
}

/// Drives a seeded random walk of `cut` steps and returns the system.
fn walk<'a>(dref: &'a DynRef<'a>, _n: usize, seed: u64, cut: usize) -> System<'a, DynRef<'a>> {
    let mut sched = Random::new(seed);
    let mut sys = System::new(dref);
    let mut table = ViewTable::new(&sys, 1, sched.wants_step_previews());
    for step in 0..cut {
        let ctx = SchedContext {
            step,
            target_passages: 1,
            views: table.views(),
        };
        let Some(p) = sched.pick(&ctx) else { break };
        let done = sys.step(p);
        table.apply(&sys, 1, &done);
    }
    sys
}

/// A pseudo-random permutation of `0..n` from a seed (Fisher–Yates
/// over a splitmix-style stream).
fn random_perm(n: usize, mut seed: u64) -> Perm {
    let mut map: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        map.swap(i, j);
    }
    Perm::from_map(map)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Along real runs of every symmetric algorithm, canonicalization
    /// is idempotent, permutation-invariant, and returns a
    /// representative that really is the recorded permutation's image
    /// of the input — the exact contract the explorer's transposition
    /// table relies on to merge orbits without merging behaviors.
    #[test]
    fn canonicalization_is_idempotent_and_permutation_invariant(
        alg_idx in 0usize..5,
        n in 2usize..=4,
        seed in any::<u64>(),
        cut in 0usize..32,
    ) {
        let registry = conformance_registry();
        let alg = registry
            .resolve_str(SYMMETRIC[alg_idx], n)
            .expect("resolves")
            .automaton;
        let dref = DynRef(alg.as_ref());
        let sys = walk(&dref, n, seed, cut);
        let snap = sys.snapshot();

        let (canon, mu) = canonicalize_snapshot(alg.as_ref(), &snap);
        // Membership: the representative is μ's image of the input.
        prop_assert_eq!(
            &permute_snapshot(alg.as_ref(), &snap, &mu),
            &canon,
            "representative must be the recorded permutation's image"
        );
        // Idempotence.
        let (again, sigma) = canonicalize_snapshot(alg.as_ref(), &canon);
        prop_assert_eq!(&again, &canon, "canonicalizing a canonical snapshot moves it");
        prop_assert!(sigma.is_identity());
        // Invariance under a random relabelling.
        let pi = random_perm(n, seed ^ 0x9e3779b97f4a7c15);
        let permuted = permute_snapshot(alg.as_ref(), &snap, &pi);
        let (canon2, _) = canonicalize_snapshot(alg.as_ref(), &permuted);
        prop_assert_eq!(
            &canon2, &canon,
            "whole orbit must share one representative"
        );
    }

    /// The symmetry contract itself, checked dynamically: stepping then
    /// permuting equals permuting then stepping the relabelled process.
    /// (The registry pins each entry's `symmetric` flag to the
    /// automaton's; this pins the flag to the *behavior*.)
    #[test]
    fn declared_symmetry_commutes_with_steps(
        alg_idx in 0usize..5,
        n in 2usize..=4,
        seed in any::<u64>(),
        cut in 0usize..24,
        p_idx in 0usize..4,
    ) {
        let registry = conformance_registry();
        let alg = registry
            .resolve_str(SYMMETRIC[alg_idx], n)
            .expect("resolves")
            .automaton;
        let dref = DynRef(alg.as_ref());
        let sys = walk(&dref, n, seed, cut);
        let snap = sys.snapshot();
        let p = ProcessId::new(p_idx % n);
        let pi = random_perm(n, seed ^ 0xd1b54a32d192ed03);

        // step-then-permute
        let mut a = System::from_snapshot(&dref, &snap);
        a.step(p);
        let stepped_then_permuted = permute_snapshot(alg.as_ref(), &a.snapshot(), &pi);
        // permute-then-step
        let permuted = permute_snapshot(alg.as_ref(), &snap, &pi);
        let mut b = System::from_snapshot(&dref, &permuted);
        b.step(pi.apply(p));
        prop_assert_eq!(
            &stepped_then_permuted,
            &b.snapshot(),
            "relabelling must be a transition-graph automorphism"
        );
    }
}

/// Scripts recorded from reduced counterexample schedules replay
/// deterministically: feeding the schedule back through `Script`
/// reproduces the violating end state of the planted race even when
/// the exploration ran with every reduction knob on.
#[test]
fn reduced_witness_scripts_replay_bit_identically() {
    let registry = conformance_registry();
    let alg = registry
        .resolve_str("broken", 3)
        .expect("resolves")
        .automaton;
    let dref = DynRef(alg.as_ref());
    let cfg = cfg_with(|c| {
        c.por = true;
        c.compress = true;
        c.spill = true;
    });
    let report = explore(alg.as_ref(), &cfg);
    let cex = report.violation.expect("broken must be caught");
    let mut sys = System::new(&dref);
    let mut script = Script::new(cex.schedule.clone());
    for step in 0..cex.schedule.len() {
        let ctx = SchedContext {
            step,
            target_passages: cfg.passages,
            views: &[],
        };
        let p = script.pick(&ctx).expect("script covers the schedule");
        let done = sys.step(p);
        assert_eq!(done.step, cex.trace.steps()[step], "step {step} diverged");
    }
    assert_eq!(sys.in_critical().count(), 2);
}
