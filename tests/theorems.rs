//! Integration: property-based checks of the paper's theorems over
//! random (algorithm, permutation, seed) triples.

use exclusion::cost::sc_cost;
use exclusion::lb::{construct, encode, run_pipeline, ConstructConfig, Permutation};
use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::Automaton;
use proptest::prelude::*;

fn small_perm(n: usize, raw: u64) -> Permutation {
    Permutation::unrank(n, raw % exclusion::lb::factorial(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full pipeline (Thm 5.5, Lemma 6.1, Thm 6.2 accounting,
    /// Thm 7.4) holds for arbitrary small instances.
    #[test]
    fn pipeline_holds(
        n in 2usize..=6,
        alg_idx in 0usize..6,
        raw in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let pi = small_perm(n, raw);
        run_pipeline(&alg, &pi, &ConstructConfig::default(), 3)
            .map_err(|e| TestCaseError::fail(format!("{} {pi}: {e}", alg.name())))?;
    }

    /// Lemma 6.1 in isolation, with many more linearizations: every
    /// random linear extension of (M, ≼) has the same SC cost.
    #[test]
    fn linearization_costs_agree(
        n in 2usize..=5,
        alg_idx in 0usize..6,
        raw in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 4),
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let pi = small_perm(n, raw);
        let c = construct(&alg, &pi, &ConstructConfig::default()).expect("construct");
        let expected = c.cost();
        for seed in seeds {
            let lin = c.linearize_random(seed);
            let cost = sc_cost(&alg, &lin).expect("replay").total();
            prop_assert_eq!(cost, expected);
        }
    }

    /// Theorem 6.2 with an explicit constant: |E_π| ≤ 8·C + 16n bits.
    /// (The O(n) additive term covers the critical-step cells — four
    /// 3-bit cells per process plus the column terminator — which the
    /// SC model prices at zero.)
    #[test]
    fn encoding_is_linear_in_cost(
        n in 2usize..=6,
        alg_idx in 0usize..6,
        raw in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let pi = small_perm(n, raw);
        let c = construct(&alg, &pi, &ConstructConfig::default()).expect("construct");
        let bits = encode(&c).bit_len();
        prop_assert!(bits <= 8 * c.cost() + 16 * n);
    }

    /// The construction is deterministic: same (algorithm, π) — same
    /// metasteps, same cost, same encoding.
    #[test]
    fn construction_is_deterministic(
        n in 2usize..=5,
        alg_idx in 0usize..6,
        raw in any::<u64>(),
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        let pi = small_perm(n, raw);
        let a = construct(&alg, &pi, &ConstructConfig::default()).expect("construct");
        let b = construct(&alg, &pi, &ConstructConfig::default()).expect("construct");
        prop_assert_eq!(a.cost(), b.cost());
        prop_assert_eq!(a.metasteps().len(), b.metasteps().len());
        prop_assert_eq!(encode(&a).to_bits(), encode(&b).to_bits());
    }
}

/// Lemma 5.4, directly: for every stage prefix k, the first k processes
/// of π take *exactly the same steps* in the k-stage construction
/// `(M_k, ≼_k)` as in the full `(M_n, ≼_n)` — later processes are
/// invisible to them.
#[test]
fn stage_prefixes_preserve_projections() {
    use exclusion::lb::construct_stages;
    for alg in AnyAlgorithm::suite(5) {
        let pi = Permutation::unrank(5, 101);
        let full = construct(&alg, &pi, &ConstructConfig::default()).unwrap();
        for k in 1..5 {
            let prefix = construct_stages(&alg, &pi.order()[..k], &ConstructConfig::default())
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", alg.name()));
            for &p in &pi.order()[..k] {
                let full_steps: Vec<_> = full
                    .chain(p)
                    .iter()
                    .map(|&m| *full.metastep(m).step_of(p).expect("p owns a step"))
                    .collect();
                let prefix_steps: Vec<_> = prefix
                    .chain(p)
                    .iter()
                    .map(|&m| *prefix.metastep(m).step_of(p).expect("p owns a step"))
                    .collect();
                assert_eq!(
                    full_steps,
                    prefix_steps,
                    "{}: projection of {p} differs between (M_{k}) and (M_5)",
                    alg.name()
                );
            }
            // And the prefix construction's linearizations are canonical
            // for exactly the k participating processes.
            let lin = prefix.linearize();
            assert_eq!(lin.critical_order(), &pi.order()[..k], "{}", alg.name());
        }
    }
}

/// Theorem 5.5's visibility corollary, tested directly: the projection
/// of a lower-indexed (earlier-in-π) process is identical whether or
/// not higher-indexed processes are in the system (Lemma 5.4).
#[test]
fn earlier_processes_cannot_see_later_ones() {
    use exclusion::shmem::Step;
    let n = 5;
    for alg in AnyAlgorithm::suite(n) {
        let pi = Permutation::unrank(n, 77);
        let full = construct(&alg, &pi, &ConstructConfig::default()).unwrap();
        let alpha_full = full.linearize();
        // Directly check Lemma 5.4's consequence on the full build: the
        // projection of π_1 contains no value written by later
        // processes' winning writes... its reads were all routed to
        // earlier writes. The first process in π reads only initial or
        // its own values:
        let first = pi.order()[0];
        let mut firsts_reads = Vec::new();
        for m in full.metasteps() {
            for r in m.reads() {
                if r.pid() == first {
                    firsts_reads.push(m.winner().map(Step::pid));
                }
            }
        }
        for winner in firsts_reads {
            // π_1 never reads a value written by any other process: it
            // runs "alone" in its own view.
            assert!(
                winner.is_none() || winner == Some(first),
                "{}: π_1 saw {winner:?}",
                alg.name()
            );
        }
        assert_eq!(alpha_full.critical_order(), pi.order());
    }
}
