//! Integration: the probe layer is observationally free and its output
//! is deterministic. With [`NoProbe`] vs a collecting probe, schedules,
//! costs and reports are bit-identical over the full registry ×
//! scheduler fixture grid; and the collected event stream itself is a
//! pure function of the run — identical across repeated games, fresh
//! vs reused schedulers, and explorer worker counts (mirroring the
//! adversary-determinism suite, which pins the same properties for the
//! unprobed engines).

use exclusion::bound::{force, force_probed, AdaptiveAdversary, BoundConfig};
use exclusion::cost::{run_priced, run_priced_faulted, run_priced_probed};
use exclusion::explore::{
    explore, explore_probed, worst_case, worst_case_probed, ExploreConfig, Model,
};
use exclusion::mutex::AlgorithmRegistry;
use exclusion::shmem::sched::Traced;
use exclusion::shmem::testing::{fixtures, Alternator};
use exclusion::shmem::{DynRef, FaultPlan, NoProbe, TraceEvent};
use exclusion::trace::{chrome_trace, CollectingProbe};
use exclusion::workload::SchedulerRegistry;
use proptest::prelude::*;

const MAX_STEPS: usize = fixtures::MAX_STEPS;

/// The registry algorithms cheap enough for a property grid (the same
/// list `adversary_determinism.rs` sweeps).
const ALGORITHMS: [&str; 8] = [
    "dekker-tree",
    "peterson",
    "bakery",
    "dijkstra",
    "burns-lynch",
    "tas-sim",
    "ttas-sim",
    "ticket-sim",
];

/// Over the full registry × scheduler fixture grid: pricing a run with
/// a collecting probe attached changes nothing — steps, SC/CC/DSM
/// reports, everything — and collecting the same run twice yields the
/// identical event stream.
#[test]
fn probed_runs_match_unprobed_on_the_full_grid() {
    let passages = fixtures::PASSAGES;
    let algs = AlgorithmRegistry::global();
    let scheds = SchedulerRegistry::global();
    for &n in fixtures::SMALL_NS {
        for name in algs.names() {
            // Skip entries below their n floor, and entries that
            // disclaim deadlock-freedom (the splitter locks can strand
            // a sampled run forever; the explorer certifies them).
            if algs
                .get(&name)
                .is_none_or(|e| e.info().min_n > n || !e.info().deadlock_free)
            {
                continue;
            }
            let erased = algs
                .resolve_str(&name, n)
                .expect("registry entry")
                .automaton;
            let alg = DynRef(erased.as_ref());
            for spec in fixtures::sched_specs(n) {
                let sched = scheds.resolve_str(&spec, n).expect("known policy");
                let seeds: &[u64] = if sched.seeded { fixtures::SEEDS } else { &[0] };
                for &seed in seeds {
                    let label = format!("{name} n={n} under {} seed {seed}", sched.label);

                    let mut plain = sched.build(passages, seed);
                    let unprobed = run_priced(&alg, plain.as_mut(), passages, MAX_STEPS)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));

                    let mut collect = CollectingProbe::new();
                    let mut observed = sched.build(passages, seed);
                    let probed = run_priced_probed(
                        &alg,
                        observed.as_mut(),
                        passages,
                        MAX_STEPS,
                        &mut collect,
                    )
                    .unwrap_or_else(|e| panic!("{label}: {e}"));

                    assert_eq!(unprobed, probed, "{label}");
                    assert!(collect.len() >= probed.steps, "{label}");
                    let executed = collect
                        .events()
                        .iter()
                        .filter(|e| matches!(e, TraceEvent::Executed { .. }))
                        .count();
                    assert_eq!(executed, probed.steps, "{label}: one event per step");

                    let mut again = CollectingProbe::new();
                    let mut rerun = sched.build(passages, seed);
                    let _ =
                        run_priced_probed(&alg, rerun.as_mut(), passages, MAX_STEPS, &mut again)
                            .unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert_eq!(collect.events(), again.events(), "{label}");
                }
            }
        }
    }
}

/// `explore` with a probe attached certifies exactly what the unprobed
/// pass certifies, and the layer-event stream is independent of the
/// worker count (layer events are emitted single-threaded at each BFS
/// barrier).
#[test]
fn explore_event_streams_are_worker_count_independent() {
    let registry = AlgorithmRegistry::global();
    let peterson = registry.resolve_str("peterson", 3).unwrap().automaton;
    let alternator = Alternator::new(3);
    let algs: [&(dyn exclusion::shmem::DynAutomaton + Sync); 2] = [peterson.as_ref(), &alternator];
    for alg in algs {
        let base = ExploreConfig {
            passages: 2,
            ..ExploreConfig::default()
        };
        let unprobed = explore(alg, &base);
        let mut streams = Vec::new();
        for workers in [1, 8] {
            let cfg = ExploreConfig { workers, ..base };
            let mut collect = CollectingProbe::new();
            let report = explore_probed(alg, &cfg, &mut collect);
            assert_eq!(report, unprobed, "{} workers={workers}", alg.name());
            assert!(
                collect
                    .events()
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Layer { .. })),
                "{}",
                alg.name()
            );
            streams.push(collect.into_events());
        }
        assert_eq!(streams[0], streams[1], "{}", alg.name());
        assert_eq!(
            chrome_trace(&streams[0]),
            chrome_trace(&streams[1]),
            "{}: byte-identical export",
            alg.name()
        );
    }
}

/// The probed worst-case search returns the unprobed verdict under
/// every cost model, and an unbounded verdict puts a pump event in the
/// stream.
#[test]
fn worst_case_probed_matches_unprobed_for_every_model() {
    let registry = AlgorithmRegistry::global();
    let peterson = registry.resolve_str("peterson", 2).unwrap().automaton;
    let cfg = ExploreConfig::default();
    for model in Model::ALL {
        let unprobed = worst_case(peterson.as_ref(), model, &cfg);
        let mut collect = CollectingProbe::new();
        let probed = worst_case_probed(peterson.as_ref(), model, &cfg, &mut collect);
        assert_eq!(probed.cost.exact(), unprobed.cost.exact(), "{model}");
        assert_eq!(probed.incumbent, unprobed.incumbent, "{model}");
        assert_eq!(probed.nodes, unprobed.nodes, "{model}");
        if model == Model::Sc {
            // Peterson's bouncing spin is pumpable under SC.
            assert!(
                collect
                    .events()
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Pump { .. })),
                "{model}"
            );
        }
    }
}

/// The faulted pricer under a probe: outcome-preserving against the
/// [`NoProbe`] run, one `Crash` and one `Recover` event per injected
/// crash (paired per victim, crash first), and the whole stream — and
/// its Chrome export — byte-identical across repeated games.
#[test]
fn faulted_streams_cover_crash_and_recover_events_deterministically() {
    let registry = AlgorithmRegistry::global();
    for name in ["rtas", "rpeterson"] {
        let alg = registry.resolve_str(name, 3).unwrap().automaton;
        let dyn_ref = DynRef(alg.as_ref());
        let run = |probe: &mut CollectingProbe| {
            let mut sched = AdaptiveAdversary::new(7);
            let mut plan = FaultPlan::in_critical(2);
            run_priced_faulted(&dyn_ref, &mut sched, &mut plan, 1, 1_000_000, probe).unwrap()
        };

        let mut sched = AdaptiveAdversary::new(7);
        let mut plan = FaultPlan::in_critical(2);
        let unprobed =
            run_priced_faulted(&dyn_ref, &mut sched, &mut plan, 1, 1_000_000, NoProbe).unwrap();

        let mut first = CollectingProbe::new();
        let a = run(&mut first);
        assert_eq!(a, unprobed, "{name}: probe is observationally free");
        assert!(a.crashes > 0, "{name}: the plan found a CS occupant");

        let crashes: Vec<_> = first
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Crash { index, pid } => Some((*index, *pid)),
                _ => None,
            })
            .collect();
        let recovers: Vec<_> = first
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Recover { index, pid } => Some((*index, *pid)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), a.crashes, "{name}: one Crash event each");
        assert_eq!(recovers.len(), a.crashes, "{name}: one Recover event each");
        // Each Recover is the victim's first post-crash step: same pid,
        // strictly later index, in the same order the crashes landed.
        for (&(ci, cp), &(ri, rp)) in crashes.iter().zip(&recovers) {
            assert_eq!(cp, rp, "{name}: recovery pairs its crash victim");
            assert!(ri > ci, "{name}: recovery follows the crash");
        }

        let mut second = CollectingProbe::new();
        let b = run(&mut second);
        assert_eq!(a, b, "{name}");
        assert_eq!(first.events(), second.events(), "{name}");
        assert_eq!(
            chrome_trace(first.events()),
            chrome_trace(second.events()),
            "{name}: byte-identical export"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Playing the full adversary game with a collecting probe neither
    /// changes the outcome nor wavers: two probed games produce the
    /// same `ForcedRun`, the same event stream, and byte-identical
    /// Chrome exports (span wall-clocks are excluded from both event
    /// equality and the export).
    #[test]
    fn probed_games_are_reproducible_and_outcome_preserving(
        alg_idx in 0..ALGORITHMS.len(),
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(ALGORITHMS[alg_idx], n).unwrap().automaton;
        let cfg = BoundConfig { seed, ..BoundConfig::default() };
        let unprobed = force(alg.as_ref(), &cfg);
        let mut first = CollectingProbe::new();
        let a = force_probed(alg.as_ref(), &cfg, &mut first);
        let mut second = CollectingProbe::new();
        let b = force_probed(alg.as_ref(), &cfg, &mut second);
        prop_assert_eq!(&a, &unprobed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(first.events(), second.events());
        prop_assert_eq!(chrome_trace(first.events()), chrome_trace(second.events()));
    }

    /// A reused probed adversary replays its schedule and its event
    /// stream from the top — per-run state (awareness partition,
    /// valve clocks) resets at step 0, and the probe sees the same
    /// merges again.
    #[test]
    fn reused_probed_adversaries_replay_their_event_streams(
        alg_idx in 0..ALGORITHMS.len(),
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        let registry = AlgorithmRegistry::global();
        let alg = registry.resolve_str(ALGORITHMS[alg_idx], n).unwrap().automaton;
        let dyn_ref = DynRef(alg.as_ref());
        let mut collect = CollectingProbe::new();
        let mut sched = Traced::new(AdaptiveAdversary::new(seed).with_probe(&mut collect));
        let priced_first = run_priced(&dyn_ref, &mut sched, 1, 1_000_000).unwrap();
        let first_picks = sched.picks().to_vec();
        let priced_again = run_priced(&dyn_ref, &mut sched, 1, 1_000_000).unwrap();
        drop(sched);
        prop_assert_eq!(&priced_first, &priced_again);
        let events = collect.into_events();
        prop_assert_eq!(events.len() % 2, 0, "two identical halves");
        let (one, two) = events.split_at(events.len() / 2);
        prop_assert_eq!(one, two);
        prop_assert!(!first_picks.is_empty());
    }
}
