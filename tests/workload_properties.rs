//! Integration: cross-suite properties of the scenario engine — every
//! algorithm stays safe under every scheduler, the greedy adversary
//! dominates the baselines it exists to beat, and parallel sweeps are
//! deterministic.

use exclusion::cost::sc_cost;
use exclusion::mutex::AnyAlgorithm;
use exclusion::shmem::sched::{
    run_random, run_scheduler, run_sequential, Burst, GreedyAdversary, Random, RoundRobin,
    Sequential, Stagger,
};
use exclusion::shmem::{Automaton, ProcessId, Scheduler};
use exclusion::workload::{sweep, Scenario, SchedSpec, SweepOptions, JSON_SCHEMA};
use proptest::prelude::*;

/// One of every scheduler, configured for `n` processes and `passages`
/// passages (the sequential order is repeated so it, too, reaches the
/// target).
fn all_schedulers(n: usize, passages: usize, seed: u64) -> Vec<Box<dyn Scheduler>> {
    let mut order: Vec<ProcessId> = Vec::new();
    for _ in 0..passages {
        order.extend(ProcessId::all(n));
    }
    vec![
        Box::new(Sequential::new(order)),
        Box::new(RoundRobin::new()),
        Box::new(Random::new(seed)),
        Box::new(GreedyAdversary::new()),
        Box::new(Burst::new(n.div_ceil(2), 2 * n)),
        Box::new(Stagger::stride(n, 2 * n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any suite algorithm, any size, any seed, under *every* scheduler
    /// (the three refactored drivers and the three adversarial ones):
    /// runs terminate, stay well formed, preserve mutual exclusion, and
    /// complete exactly the requested passages.
    #[test]
    fn every_scheduler_preserves_safety_on_every_algorithm(
        n in 2usize..=5,
        alg_idx in 0usize..6,
        seed in any::<u64>(),
        passages in 1usize..=2,
    ) {
        let alg = AnyAlgorithm::suite(n).remove(alg_idx);
        for mut sched in all_schedulers(n, passages, seed) {
            let exec = run_scheduler(&alg, sched.as_mut(), passages, 50_000_000)
                .map_err(|e| TestCaseError::fail(
                    format!("{} under {}: {e}", alg.name(), sched.name()),
                ))?;
            prop_assert!(exec.well_formed(n), "{} under {}", alg.name(), sched.name());
            prop_assert!(exec.mutual_exclusion(n), "{} under {}", alg.name(), sched.name());
            prop_assert_eq!(
                exec.critical_order().len(),
                n * passages,
                "{} under {}",
                alg.name(),
                sched.name()
            );
        }
    }
}

/// The adversary never extracts *less* SC cost than the canonical
/// (no-contention) sequential run — contention only adds state changes.
#[test]
fn greedy_adversary_never_extracts_less_than_canonical() {
    for n in [2usize, 3, 4, 6, 8] {
        for alg in AnyAlgorithm::suite(n) {
            let order: Vec<_> = ProcessId::all(n).collect();
            let seq = run_sequential(&alg, &order, 1_000_000).expect("canonical run");
            let seq_sc = sc_cost(&alg, &seq).expect("replay").total();
            let adv = run_scheduler(&alg, &mut GreedyAdversary::new(), 1, 50_000_000)
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", alg.name()));
            let adv_sc = sc_cost(&alg, &adv).expect("replay").total();
            assert!(
                adv_sc >= seq_sc,
                "{} n={n}: adversary {adv_sc} < sequential {seq_sc}",
                alg.name()
            );
        }
    }
}

/// The acceptance bar for the greedy adversary: on the tournament lock
/// at n = 8 it extracts at least as much SC cost as the random fair
/// scheduler manages on any of a 16-seed grid, for 1 and 2 passages.
#[test]
fn greedy_beats_every_random_schedule_on_dekker_n8() {
    let alg = AnyAlgorithm::by_name("dekker-tree", 8).expect("known");
    for passages in [1usize, 2] {
        let adv = run_scheduler(&alg, &mut GreedyAdversary::new(), passages, 50_000_000)
            .expect("adversary run");
        let adv_sc = sc_cost(&alg, &adv).expect("replay").total();
        for seed in 0..16u64 {
            let rnd = run_random(&alg, passages, 50_000_000, seed).expect("random run");
            let rnd_sc = sc_cost(&alg, &rnd).expect("replay").total();
            assert!(
                adv_sc >= rnd_sc,
                "passages={passages} seed={seed}: adversary {adv_sc} < random {rnd_sc}"
            );
        }
    }
}

/// A sharded sweep is a pure function of its scenario grid: thread
/// count changes nothing, and the JSON report carries the schema tag.
#[test]
fn sweeps_are_deterministic_and_reportable() {
    let scenarios: Vec<Scenario> = ["dekker-tree", "burns-lynch"]
        .into_iter()
        .flat_map(|alg| {
            [
                SchedSpec::greedy(),
                SchedSpec::random(),
                SchedSpec::stagger(8),
            ]
            .into_iter()
            .map(move |sched| {
                Scenario::builder(alg, 4)
                    .passages(2)
                    .sched(sched)
                    .seeds(1..=4)
                    .build()
                    .expect("valid")
            })
        })
        .collect();
    let opts = |threads| SweepOptions {
        threads,
        ..SweepOptions::default()
    };
    let serial = sweep(&scenarios, &opts(1));
    let sharded = sweep(&scenarios, &opts(4));
    assert_eq!(serial, sharded);
    assert_eq!(serial.to_json(), sharded.to_json());
    assert!(serial.to_json().contains(JSON_SCHEMA));
    assert_eq!(
        serial.to_csv().lines().count(),
        serial.records.len() + 1,
        "CSV: header plus one line per record"
    );
    // 2 algorithms × (greedy 1 + random 4 + stagger 4) runs.
    assert_eq!(serial.records.len(), 18);
    assert!(serial.records.iter().all(|r| r.error.is_none()));
}
